"""Seeded fault injection over the overlay network.

The rest of :mod:`repro.net` models the environment the paper's testbed
*provided*; this module models what a real deployment must *survive*:

* **lossy links** — every overlay-hop transmission is dropped with a
  per-link probability; senders retransmit within a bounded budget;
* **noisy pings** — liveness probes suffer false negatives (a live peer
  looks down: congestion, NAT timeout) and false positives (a dead peer
  looks up: a zombie middlebox answers); :class:`PingService` wraps the
  probes with timeouts, exponential backoff, and a suspicion counter so a
  single bad sample cannot trigger §III-F evictions;
* **crash vs. graceful departure** — a gracefully departing peer notifies
  its contacts (its death is confirmed on the first probe); a crashed
  peer can only be detected through repeated timeouts;
* **ring partitions** — time-windowed cuts of the identifier ring: peers
  on opposite arcs cannot exchange messages while the partition is
  active, no matter how many retransmissions they spend.

Everything is driven by one seeded generator inside :class:`FaultPlan`,
so a fault scenario is exactly reproducible. ``FaultPlan.none()`` is the
contractual no-fault plan: it never touches the generator and every
consumer short-circuits on :attr:`FaultPlan.is_null`, keeping the
default (fault-free) code paths bit-identical to a run without a plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.registry import get_registry
from repro.util.exceptions import ConfigurationError, FaultInjectionError, PartitionError
from repro.util.rng import as_generator

__all__ = [
    "RingPartition",
    "FaultStats",
    "FaultPlan",
    "PathOutcome",
    "PingResult",
    "PingService",
]


@dataclass(frozen=True)
class RingPartition:
    """A time-windowed cut of the unit identifier ring.

    ``cut`` names two points on the ring; the arc ``[cut[0], cut[1])``
    (wrapping through 1.0 when ``cut[0] > cut[1]``) forms one side of the
    partition, everything else the other. While ``start <= t < end``,
    peers whose identifiers fall on opposite sides cannot communicate.
    """

    cut: tuple[float, float]
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self):
        a, b = self.cut
        if not (0.0 <= a < 1.0 and 0.0 <= b < 1.0):
            raise PartitionError(f"cut points must lie on the unit ring [0, 1), got {self.cut}")
        if a == b:
            raise PartitionError(f"cut points must be distinct, got {self.cut}")
        if self.end <= self.start:
            raise PartitionError(
                f"partition window must be non-empty, got [{self.start}, {self.end})"
            )

    def active(self, t: float) -> bool:
        """Whether the partition is in effect at time ``t``."""
        return self.start <= t < self.end

    def side(self, identifier: float) -> int:
        """Which side of the cut (0 or 1) ``identifier`` falls on."""
        a, b = self.cut
        if a < b:
            return 0 if a <= identifier < b else 1
        return 0 if (identifier >= a or identifier < b) else 1

    def separates(self, id_u: float, id_v: float, t: float) -> bool:
        """True when the partition blocks a ``u -> v`` transmission at ``t``."""
        return self.active(t) and self.side(id_u) != self.side(id_v)


@dataclass
class FaultStats:
    """Counters accumulated by one :class:`FaultPlan` across a run."""

    #: end-to-end deliveries attempted through :meth:`FaultPlan.transmit_path`.
    messages: int = 0
    #: deliveries abandoned (retry budget exhausted or partition block).
    drops: int = 0
    #: individual hop transmissions that were lost and retried.
    retransmissions: int = 0
    #: transmissions refused because a partition separated the endpoints.
    partition_blocks: int = 0
    #: liveness probe attempts issued (including retries).
    pings: int = 0
    #: probe attempts beyond the first within one probe (backoff retries).
    ping_retries: int = 0
    #: probes of a *live* contact that timed out (injected false negative).
    ping_false_negatives: int = 0
    #: probes of a *dead* contact that got a response (injected false positive).
    ping_false_positives: int = 0
    #: virtual milliseconds spent waiting on probe timeouts.
    ping_wait_ms: float = 0.0

    def mean_retries(self) -> float:
        """Retransmissions per attempted end-to-end delivery."""
        return self.retransmissions / self.messages if self.messages else 0.0

    def as_dict(self) -> dict:
        """Plain-dict snapshot for reports/export."""
        return {
            "messages": self.messages,
            "drops": self.drops,
            "retransmissions": self.retransmissions,
            "partition_blocks": self.partition_blocks,
            "pings": self.pings,
            "ping_retries": self.ping_retries,
            "ping_false_negatives": self.ping_false_negatives,
            "ping_false_positives": self.ping_false_positives,
            "ping_wait_ms": self.ping_wait_ms,
        }


@dataclass(frozen=True)
class PathOutcome:
    """Result of pushing one message along one overlay path."""

    delivered: bool
    retries: int
    lost_at: "int | None" = None  # path index of the hop that failed
    partition_blocked: bool = False


class FaultPlan:
    """A seeded, reproducible description of what goes wrong and when.

    Parameters
    ----------
    loss_rate:
        Baseline probability that one hop transmission is lost.
    link_loss:
        Optional per-link overrides: ``{(u, v): probability}``; keys are
        unordered (the loss applies in both directions).
    retry_budget:
        Retransmissions a sender may spend per hop before giving up.
    ping_false_negative, ping_false_positive:
        Per-attempt probability that a liveness probe of a live contact
        times out / of a dead contact gets answered.
    ping_attempts:
        Probe attempts (with exponential backoff) before a contact is
        reported unresponsive.
    suspicion_threshold:
        Consecutive unresponsive *probes* (maintenance ticks) before a
        contact's failure is treated as confirmed.
    graceful_fraction:
        Fraction of peers whose departures are announced to their
        contacts (detected on the first probe, no noise); the rest crash
        silently and must be discovered through timeouts.
    partitions:
        :class:`RingPartition` instances to inject.
    """

    def __init__(
        self,
        loss_rate: float = 0.0,
        link_loss: "dict[tuple[int, int], float] | None" = None,
        retry_budget: int = 2,
        ping_false_negative: float = 0.0,
        ping_false_positive: float = 0.0,
        ping_attempts: int = 3,
        suspicion_threshold: int = 2,
        graceful_fraction: float = 0.0,
        partitions: "tuple[RingPartition, ...] | list[RingPartition]" = (),
        seed=None,
        registry=None,
    ):
        for name, p in (
            ("loss_rate", loss_rate),
            ("ping_false_negative", ping_false_negative),
            ("ping_false_positive", ping_false_positive),
            ("graceful_fraction", graceful_fraction),
        ):
            if not (0.0 <= p <= 1.0):
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if retry_budget < 0:
            raise ConfigurationError(f"retry_budget must be non-negative, got {retry_budget}")
        if ping_attempts < 1:
            raise ConfigurationError(f"ping_attempts must be >= 1, got {ping_attempts}")
        if suspicion_threshold < 1:
            raise ConfigurationError(
                f"suspicion_threshold must be >= 1, got {suspicion_threshold}"
            )
        self.loss_rate = float(loss_rate)
        self.link_loss = {
            (min(u, v), max(u, v)): float(p) for (u, v), p in (link_loss or {}).items()
        }
        for (u, v), p in self.link_loss.items():
            if not (0.0 <= p <= 1.0):
                raise ConfigurationError(f"link_loss[{(u, v)}] must be in [0, 1], got {p}")
        self.retry_budget = int(retry_budget)
        self.ping_false_negative = float(ping_false_negative)
        self.ping_false_positive = float(ping_false_positive)
        self.ping_attempts = int(ping_attempts)
        self.suspicion_threshold = int(suspicion_threshold)
        self.graceful_fraction = float(graceful_fraction)
        self.partitions = tuple(partitions)
        # Overlapping windows would make "which side is peer X on?"
        # ambiguous mid-simulation; refuse them up front. Touching
        # windows (prev.end == next.start) are fine: windows are
        # half-open, so no instant belongs to both.
        by_start = sorted(self.partitions, key=lambda p: (p.start, p.end))
        for prev, nxt in zip(by_start, by_start[1:]):
            if nxt.start < prev.end:
                raise PartitionError(
                    "partition windows overlap: "
                    f"[{prev.start}, {prev.end}) and [{nxt.start}, {nxt.end})"
                )
        self.stats = FaultStats()
        self._rng = as_generator(seed)
        self._graceful: dict[int, bool] = {}
        # Registry mirrors of the FaultStats counters (no-ops under the
        # default NullRegistry; live counters when telemetry is installed).
        registry = registry if registry is not None else get_registry()
        self._m_messages = registry.counter("faults.messages", "end-to-end deliveries attempted")
        self._m_drops = registry.counter("faults.drops", "deliveries abandoned")
        self._m_retransmissions = registry.counter(
            "faults.retransmissions", "hop transmissions lost and retried"
        )
        self._m_partition_blocks = registry.counter(
            "faults.partition_blocks", "transmissions refused across a partition"
        )
        self._m_pings = registry.counter("faults.pings", "liveness probe attempts")
        self._m_ping_retries = registry.counter("faults.ping_retries", "probe backoff retries")
        self._m_ping_false_negatives = registry.counter(
            "faults.ping_false_negatives", "live contacts that looked down"
        )
        self._m_ping_false_positives = registry.counter(
            "faults.ping_false_positives", "dead contacts that looked up"
        )
        self._m_ping_wait_ms = registry.counter(
            "faults.ping_wait_ms", "virtual milliseconds spent on probe timeouts"
        )

    @classmethod
    def none(cls) -> "FaultPlan":
        """The no-fault plan: every consumer short-circuits on it."""
        return cls()

    @property
    def is_null(self) -> bool:
        """True when the plan can never alter behaviour (fast-path check)."""
        return (
            self.loss_rate == 0.0
            and not self.link_loss
            and self.ping_false_negative == 0.0
            and self.ping_false_positive == 0.0
            and self.graceful_fraction == 0.0
            and not self.partitions
        )

    # -- per-peer departure style -------------------------------------------

    def departs_gracefully(self, peer: int) -> bool:
        """Whether ``peer`` announces its departures (sampled once, cached)."""
        if self.graceful_fraction == 0.0:
            return False
        if self.graceful_fraction == 1.0:
            return True
        known = self._graceful.get(peer)
        if known is None:
            known = self._graceful[peer] = bool(self._rng.random() < self.graceful_fraction)
        return known

    # -- message-level faults -------------------------------------------------

    def hop_loss(self, u: int, v: int) -> float:
        """Loss probability of the ``u <-> v`` link."""
        return self.link_loss.get((min(u, v), max(u, v)), self.loss_rate)

    def partition_blocks_link(self, id_u: float, id_v: float, time: float) -> bool:
        """Whether any active partition separates the two identifiers."""
        return any(p.separates(id_u, id_v, time) for p in self.partitions)

    def _transmit_hop(self, u: int, v: int) -> "tuple[bool, int]":
        """One hop ``u -> v`` through the lossy link; ``(delivered, retries)``."""
        p = self.hop_loss(u, v)
        if p <= 0.0:
            return True, 0
        retries = 0
        for attempt in range(1 + self.retry_budget):
            if self._rng.random() >= p:
                return True, retries
            if attempt < self.retry_budget:
                retries += 1
                self.stats.retransmissions += 1
                self._m_retransmissions.inc()
        return False, retries

    def transmit(
        self, u: int, v: int, id_u: float = 0.0, id_v: float = 0.0, time: float = 0.0
    ) -> "tuple[bool, int]":
        """One hop ``u -> v`` with retransmissions; ``(delivered, retries)``."""
        if self.partition_blocks_link(id_u, id_v, time):
            self.stats.partition_blocks += 1
            self._m_partition_blocks.inc()
            return False, 0
        return self._transmit_hop(u, v)

    def transmit_path(
        self,
        path: "list[int]",
        ids: "np.ndarray | None" = None,
        time: float = 0.0,
        edge_cache: "dict | None" = None,
    ) -> PathOutcome:
        """Push one message along ``path`` hop by hop.

        ``ids`` (peer identifiers) are required when partitions are
        configured. ``edge_cache`` deduplicates transmissions: paths merged
        into one dissemination tree share prefixes, and a shared hop is
        transmitted (and can be lost) only once — pass the same dict for
        every path of one publish event.
        """
        self.stats.messages += 1
        self._m_messages.inc()
        if self.partitions and ids is None:
            raise FaultInjectionError("transmit_path needs peer ids when partitions are set")
        retries = 0
        for i in range(len(path) - 1):
            u, v = path[i], path[i + 1]
            key = (u, v)
            if edge_cache is not None and key in edge_cache:
                ok, r, blocked = edge_cache[key]
            else:
                id_u = float(ids[u]) if ids is not None else 0.0
                id_v = float(ids[v]) if ids is not None else 0.0
                blocked = self.partition_blocks_link(id_u, id_v, time)
                if blocked:
                    self.stats.partition_blocks += 1
                    self._m_partition_blocks.inc()
                    ok, r = False, 0
                else:
                    ok, r = self._transmit_hop(u, v)
                if edge_cache is not None:
                    edge_cache[key] = (ok, r, blocked)
            retries += r
            if not ok:
                self.stats.drops += 1
                self._m_drops.inc()
                return PathOutcome(False, retries, lost_at=i + 1, partition_blocked=blocked)
        return PathOutcome(True, retries)

    # -- ping-level faults -----------------------------------------------------

    def ping_drops_response(self) -> bool:
        """Sample one false negative (live contact looks down)."""
        return self.ping_false_negative > 0.0 and bool(
            self._rng.random() < self.ping_false_negative
        )

    def ping_fakes_response(self) -> bool:
        """Sample one false positive (dead contact looks up)."""
        return self.ping_false_positive > 0.0 and bool(
            self._rng.random() < self.ping_false_positive
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(loss={self.loss_rate}, fn={self.ping_false_negative}, "
            f"fp={self.ping_false_positive}, retries={self.retry_budget}, "
            f"partitions={len(self.partitions)})"
        )


@dataclass(frozen=True)
class PingResult:
    """Outcome of one :meth:`PingService.probe`."""

    #: the contact answered within the timeout budget.
    responded: bool
    #: probe attempts spent (1 on a clean first response).
    attempts: int
    #: virtual milliseconds spent waiting on timeouts.
    waited_ms: float
    #: the failure cleared the suspicion threshold: safe to act on.
    confirmed_down: bool


class PingService:
    """Liveness probing with timeouts, exponential backoff, and suspicion.

    Each maintenance tick, :meth:`set_ground_truth` installs the tick's
    actual liveness; :meth:`probe` then answers *as the network would*:
    through the :class:`FaultPlan`'s false-negative/false-positive noise,
    retrying with exponentially backed-off timeouts, and only confirming
    a failure after ``suspicion_threshold`` consecutive unresponsive
    probes of the same contact. With a null plan the service degenerates
    to the oracle the seed reproduction used: one attempt, truthful
    answer, failure confirmed immediately.
    """

    def __init__(
        self,
        faults: "FaultPlan | None" = None,
        base_timeout_ms: float = 200.0,
        backoff: float = 2.0,
        registry=None,
    ):
        # Strict range checks: ``base_timeout_ms`` is *milliseconds* — a
        # caller passing seconds (0.2) or a junk NaN/inf would silently
        # skew every timeout-derived stat, so reject non-finite values
        # and anything outside sane probing ranges outright.
        if not math.isfinite(base_timeout_ms) or base_timeout_ms <= 0:
            raise ConfigurationError(
                f"base_timeout_ms must be a positive finite number of "
                f"milliseconds, got {base_timeout_ms}"
            )
        if not math.isfinite(backoff) or backoff < 1.0:
            raise ConfigurationError(f"backoff must be finite and >= 1, got {backoff}")
        self.faults = faults if faults is not None else FaultPlan.none()
        self.base_timeout_ms = float(base_timeout_ms)
        self.backoff = float(backoff)
        self._online: "np.ndarray | None" = None
        self._suspicion: dict[tuple[int, int], int] = {}
        # Service-level registry counters (no-ops under NullRegistry):
        # unlike the FaultPlan's ``faults.*`` counters, these describe the
        # *prober's* experience — attempts spent, probes that timed out,
        # failures confirmed past the suspicion threshold.
        registry = registry if registry is not None else get_registry()
        self._m_probe_attempts = registry.counter(
            "ping.probe_attempts", "probe attempts issued (incl. backoff retries)"
        )
        self._m_probe_timeouts = registry.counter(
            "ping.probe_timeouts", "probes that exhausted every attempt unanswered"
        )
        self._m_confirmed_down = registry.counter(
            "ping.confirmed_down", "probe failures confirmed past the suspicion threshold"
        )
        self._h_probe_wait_ms = registry.histogram(
            "ping.probe_wait_ms",
            (0.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0),
            "virtual milliseconds spent waiting per probe",
        )

    # -- effective policy (oracle when the plan is null) -----------------------

    @property
    def max_attempts(self) -> int:
        """Probe attempts per contact (1 under a null plan: no noise to beat)."""
        return 1 if self.faults.is_null else self.faults.ping_attempts

    @property
    def suspicion_threshold(self) -> int:
        """Consecutive failures before a failure is confirmed (1 under null)."""
        return 1 if self.faults.is_null else self.faults.suspicion_threshold

    # -- ground truth ---------------------------------------------------------

    def set_ground_truth(self, online: np.ndarray) -> None:
        """Install this tick's actual liveness vector."""
        self._online = online

    def ground_truth(self) -> np.ndarray:
        """The installed liveness vector (simulation-side bookkeeping only)."""
        if self._online is None:
            raise FaultInjectionError("set_ground_truth() must be called before probing")
        return self._online

    def truth(self, peer: int) -> bool:
        """Actual liveness of ``peer`` (simulation-side bookkeeping only)."""
        return bool(self.ground_truth()[peer])

    # -- probing ----------------------------------------------------------------

    def _exchange(self, contact: int) -> "tuple[bool, int, float]":
        """One probe exchange: ``(responded, attempts, waited_ms)``."""
        truth = self.truth(contact)
        faults = self.faults
        stats = faults.stats
        if faults.is_null:
            stats.pings += 1
            faults._m_pings.inc()
            self._m_probe_attempts.inc()
            waited = 0.0 if truth else self.base_timeout_ms
            if not truth:
                self._m_probe_timeouts.inc()
            self._h_probe_wait_ms.observe(waited)
            return truth, 1, waited
        if not truth and faults.departs_gracefully(contact):
            # Graceful departure: the contact said goodbye; no probing noise
            # and no timeout — the "no" is an answer, not silence.
            stats.pings += 1
            faults._m_pings.inc()
            self._m_probe_attempts.inc()
            self._h_probe_wait_ms.observe(0.0)
            return False, 1, 0.0
        timeout = self.base_timeout_ms
        waited = 0.0
        for attempt in range(1, self.max_attempts + 1):
            stats.pings += 1
            faults._m_pings.inc()
            self._m_probe_attempts.inc()
            if attempt > 1:
                stats.ping_retries += 1
                faults._m_ping_retries.inc()
            if truth:
                if not faults.ping_drops_response():
                    self._h_probe_wait_ms.observe(waited)
                    return True, attempt, waited
                stats.ping_false_negatives += 1
                faults._m_ping_false_negatives.inc()
            else:
                if faults.ping_fakes_response():
                    stats.ping_false_positives += 1
                    faults._m_ping_false_positives.inc()
                    self._h_probe_wait_ms.observe(waited)
                    return True, attempt, waited
            # Timed out: wait, back off, retry.
            waited += timeout
            stats.ping_wait_ms += timeout
            faults._m_ping_wait_ms.inc(timeout)
            timeout *= self.backoff
        self._m_probe_timeouts.inc()
        self._h_probe_wait_ms.observe(waited)
        return False, self.max_attempts, waited

    def check(self, observer: int, contact: int) -> bool:
        """Perceived liveness of ``contact`` (no suspicion *accrual*).

        Used for side-questions like "is this replacement candidate up?"
        where an occasional wrong answer self-corrects on later ticks.
        A response does clear any accumulated suspicion: a confirmed-live
        contact is no longer suspect, so a flapping link stops marching
        toward eviction the moment it answers anything. An unresponsive
        check never increments suspicion — only :meth:`probe` does.
        """
        responded, _, _ = self._exchange(contact)
        if responded:
            self._suspicion.pop((observer, contact), None)
            self._decay_contact(contact, exclude=observer)
        return responded

    def probe(self, observer: int, contact: int) -> PingResult:
        """Full probe for the §III-F maintenance decision.

        Tracks per-``(observer, contact)`` suspicion: an unresponsive
        probe increments it, a response clears it, and ``confirmed_down``
        is only raised once ``suspicion_threshold`` consecutive probes
        failed — so one noisy sample can never trigger an eviction.
        """
        responded, attempts, waited = self._exchange(contact)
        key = (observer, contact)
        if responded:
            self._suspicion.pop(key, None)
            self._decay_contact(contact, exclude=observer)
            return PingResult(True, attempts, waited, False)
        count = self._suspicion.get(key, 0) + 1
        if not self.truth(contact) and self.faults.departs_gracefully(contact):
            # An announced departure is trusted immediately.
            count = self.suspicion_threshold
        self._suspicion[key] = count
        confirmed = count >= self.suspicion_threshold
        if confirmed:
            self._m_confirmed_down.inc()
        return PingResult(False, attempts, waited, confirmed)

    def _decay_contact(self, contact: int, exclude: int) -> None:
        """Bounded decay of *everyone's* suspicion of a contact that answered.

        A peer that recovers while unobserved used to stay suspect
        forever in the eyes of observers that stopped probing it — after
        an outage heals, stale counters would put recovered peers one
        noisy sample away from eviction. Any confirmed response is
        evidence the contact is back, so every other observer's counter
        steps down by one (never below zero; the responding pair's own
        counter is cleared outright by the caller).
        """
        stale = [k for k in self._suspicion if k[1] == contact and k[0] != exclude]
        for key in stale:
            remaining = self._suspicion[key] - 1
            if remaining <= 0:
                del self._suspicion[key]
            else:
                self._suspicion[key] = remaining

    def forget(self, observer: int, contact: int) -> None:
        """Clear suspicion state after the observer dropped the contact."""
        self._suspicion.pop((observer, contact), None)

    def suspicion(self, observer: int, contact: int) -> int:
        """Current consecutive-failure count for the pair."""
        return self._suspicion.get((observer, contact), 0)
