"""Social-network growth model (paper's citation [19], Zhu et al.).

The evaluation populates the overlay incrementally: a random seed user
joins first, then at each step a registered user "invites" a batch of
not-yet-registered friends, with the batch size decaying exponentially
over time (high join rate early, tapering later). The resulting join
order and inviter mapping feed SELECT's projection step (Algorithm 1):
invited users receive identifiers adjacent to their inviter, independent
joiners get uniform hashes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.util.exceptions import ConfigurationError
from repro.util.rng import as_generator

__all__ = ["JoinEvent", "GrowthModel"]


@dataclass(frozen=True)
class JoinEvent:
    """One user joining the network.

    ``inviter`` is the already-registered friend that pulled the user in,
    or ``None`` for an independent (seed) joiner.
    """

    step: int
    user: int
    inviter: "int | None"


class GrowthModel:
    """Generates a join order over a social graph.

    Parameters
    ----------
    graph:
        The final social graph the network grows into.
    initial_rate:
        Expected number of friends invited per step at the beginning.
    decay:
        Per-step multiplicative decay of the invitation rate (< 1.0);
        the rate floors at 1 so growth always completes.
    seed_fraction:
        Fraction of users that join independently (uniform-hash ids) even
        when a registered friend exists — new users are not always invited.
    """

    def __init__(
        self,
        graph: SocialGraph,
        initial_rate: float = 8.0,
        decay: float = 0.95,
        seed_fraction: float = 0.1,
        seed=None,
    ):
        if initial_rate < 1.0:
            raise ConfigurationError(f"initial_rate must be >= 1, got {initial_rate}")
        if not (0.0 < decay <= 1.0):
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        if not (0.0 <= seed_fraction <= 1.0):
            raise ConfigurationError(f"seed_fraction must be in [0, 1], got {seed_fraction}")
        self.graph = graph
        self.initial_rate = initial_rate
        self.decay = decay
        self.seed_fraction = seed_fraction
        self._rng = as_generator(seed)

    def join_order(self) -> list[JoinEvent]:
        """Produce a full join sequence covering every user of the graph.

        Independent joins draw the k-th not-yet-joined user through a
        Fenwick tree (O(log n) select) instead of materialising the
        remaining-user array per draw, and a frontier collision removes
        the single stale entry in place instead of rebuilding the list.
        Both replacements consume the identical random stream and visit
        users in the identical order as the straightforward O(n^2)
        formulation, so join sequences are reproducible across versions.
        """
        g = self.graph
        n = g.num_nodes
        rng = self._rng
        joined = np.zeros(n, dtype=bool)
        events: list[JoinEvent] = []
        # Frontier: not-yet-joined friends of members, in insertion order;
        # each user appears at most once, with its inviter kept aside.
        frontier: list[int] = []
        inviter_of: dict[int, int] = {}
        in_frontier = np.zeros(n, dtype=bool)
        # Fenwick tree counting not-yet-joined users per prefix. The k-th
        # smallest unjoined user equals ``np.flatnonzero(~joined)[k]``.
        fenwick = [0] * (n + 1)
        for i in range(1, n + 1):
            fenwick[i] += 1
            j = i + (i & -i)
            if j <= n:
                fenwick[j] += fenwick[i]
        unjoined = n
        # Highest power of two <= n, for the top-down k-th select descent.
        top_bit = 1 << (n.bit_length() - 1)
        if top_bit > n:
            top_bit >>= 1

        def mark_joined(user: int) -> None:
            i = user + 1
            while i <= n:
                fenwick[i] -= 1
                i += i & -i

        def kth_unjoined(k: int) -> int:
            # Descend to the largest prefix whose unjoined count is <= k.
            pos = 0
            bit = top_bit
            while bit:
                nxt = pos + bit
                if nxt <= n and fenwick[nxt] <= k:
                    pos = nxt
                    k -= fenwick[nxt]
                bit >>= 1
            return pos  # 0-based user id

        def register(user: int, inviter: "int | None", step: int) -> None:
            joined[user] = True
            mark_joined(user)
            events.append(JoinEvent(step=step, user=user, inviter=inviter))
            for friend in g.neighbors(user):
                friend = int(friend)
                if not joined[friend] and not in_frontier[friend]:
                    frontier.append(friend)
                    inviter_of[friend] = user
                    in_frontier[friend] = True

        step = 0
        seed_user = int(rng.integers(n))
        register(seed_user, None, step)
        unjoined -= 1
        rate = self.initial_rate
        while len(events) < n:
            step += 1
            batch = max(1, int(rng.poisson(max(rate, 1.0))))
            rate *= self.decay
            for _ in range(batch):
                if len(events) >= n:
                    break
                use_frontier = frontier and rng.random() >= self.seed_fraction
                if use_frontier:
                    # Invitation join: pull a random frontier member in.
                    idx = int(rng.integers(len(frontier)))
                    user = frontier.pop(idx)
                    inviter = inviter_of.pop(user)
                    in_frontier[user] = False
                    if joined[user]:
                        continue
                    register(user, inviter, step)
                    unjoined -= 1
                else:
                    # Independent join: a user with no (chosen) inviter.
                    if unjoined == 0:
                        break
                    user = kth_unjoined(int(rng.integers(unjoined)))
                    if in_frontier[user]:
                        # Joining independently invalidates the pending invite.
                        in_frontier[user] = False
                        del frontier[frontier.index(user)]
                        del inviter_of[user]
                    register(user, None, step)
                    unjoined -= 1
        return events

    def inviter_map(self, events: "list[JoinEvent] | None" = None) -> dict[int, "int | None"]:
        """Convenience: ``user -> inviter`` dict from a join sequence."""
        events = events if events is not None else self.join_order()
        return {e.user: e.inviter for e in events}
