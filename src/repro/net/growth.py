"""Social-network growth model (paper's citation [19], Zhu et al.).

The evaluation populates the overlay incrementally: a random seed user
joins first, then at each step a registered user "invites" a batch of
not-yet-registered friends, with the batch size decaying exponentially
over time (high join rate early, tapering later). The resulting join
order and inviter mapping feed SELECT's projection step (Algorithm 1):
invited users receive identifiers adjacent to their inviter, independent
joiners get uniform hashes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.util.exceptions import ConfigurationError
from repro.util.rng import as_generator

__all__ = ["JoinEvent", "GrowthModel"]


@dataclass(frozen=True)
class JoinEvent:
    """One user joining the network.

    ``inviter`` is the already-registered friend that pulled the user in,
    or ``None`` for an independent (seed) joiner.
    """

    step: int
    user: int
    inviter: "int | None"


class GrowthModel:
    """Generates a join order over a social graph.

    Parameters
    ----------
    graph:
        The final social graph the network grows into.
    initial_rate:
        Expected number of friends invited per step at the beginning.
    decay:
        Per-step multiplicative decay of the invitation rate (< 1.0);
        the rate floors at 1 so growth always completes.
    seed_fraction:
        Fraction of users that join independently (uniform-hash ids) even
        when a registered friend exists — new users are not always invited.
    """

    def __init__(
        self,
        graph: SocialGraph,
        initial_rate: float = 8.0,
        decay: float = 0.95,
        seed_fraction: float = 0.1,
        seed=None,
    ):
        if initial_rate < 1.0:
            raise ConfigurationError(f"initial_rate must be >= 1, got {initial_rate}")
        if not (0.0 < decay <= 1.0):
            raise ConfigurationError(f"decay must be in (0, 1], got {decay}")
        if not (0.0 <= seed_fraction <= 1.0):
            raise ConfigurationError(f"seed_fraction must be in [0, 1], got {seed_fraction}")
        self.graph = graph
        self.initial_rate = initial_rate
        self.decay = decay
        self.seed_fraction = seed_fraction
        self._rng = as_generator(seed)

    def join_order(self) -> list[JoinEvent]:
        """Produce a full join sequence covering every user of the graph."""
        g = self.graph
        n = g.num_nodes
        rng = self._rng
        joined = np.zeros(n, dtype=bool)
        events: list[JoinEvent] = []
        # Frontier: (user, inviter) pairs of not-yet-joined friends of members.
        frontier: list[tuple[int, int]] = []
        in_frontier = np.zeros(n, dtype=bool)

        def register(user: int, inviter: "int | None", step: int) -> None:
            joined[user] = True
            events.append(JoinEvent(step=step, user=user, inviter=inviter))
            for friend in g.neighbors(user):
                friend = int(friend)
                if not joined[friend] and not in_frontier[friend]:
                    frontier.append((friend, user))
                    in_frontier[friend] = True

        step = 0
        seed_user = int(rng.integers(n))
        register(seed_user, None, step)
        rate = self.initial_rate
        while len(events) < n:
            step += 1
            batch = max(1, int(rng.poisson(max(rate, 1.0))))
            rate *= self.decay
            for _ in range(batch):
                if len(events) >= n:
                    break
                use_frontier = frontier and rng.random() >= self.seed_fraction
                if use_frontier:
                    # Invitation join: pull a random frontier member in.
                    idx = int(rng.integers(len(frontier)))
                    user, inviter = frontier.pop(idx)
                    in_frontier[user] = False
                    if joined[user]:
                        continue
                    register(user, inviter, step)
                else:
                    # Independent join: a user with no (chosen) inviter.
                    remaining = np.flatnonzero(~joined)
                    if remaining.size == 0:
                        break
                    user = int(rng.choice(remaining))
                    if in_frontier[user]:
                        in_frontier[user] = False
                        frontier = [(u, inv) for (u, inv) in frontier if u != user]
                    register(user, None, step)
        return events

    def inviter_map(self, events: "list[JoinEvent] | None" = None) -> dict[int, "int | None"]:
        """Convenience: ``user -> inviter`` dict from a join sequence."""
        events = events if events is not None else self.join_order()
        return {e.user: e.inviter for e in events}
