"""Publish workload model (paper's citation [21], Jiang et al.).

Publishers post notifications with exponential inter-arrival times; the
per-publisher rate itself is heterogeneous (log-normally distributed), so
a minority of prolific users generates most traffic — matching measured
OSN posting behaviour and stressing the load-balance experiment (Fig. 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.exceptions import ConfigurationError
from repro.util.rng import as_generator

__all__ = ["PublishEvent", "PublishWorkload"]


@dataclass(frozen=True)
class PublishEvent:
    """One notification posted by ``publisher`` at ``time``."""

    time: float
    publisher: int
    message_id: int


class PublishWorkload:
    """Generates a time-ordered stream of publish events.

    Parameters
    ----------
    num_users:
        Number of potential publishers.
    mean_rate:
        Average posts per simulated second across the population.
    rate_sigma:
        Log-normal spread of the per-user rate (0 = homogeneous).
    publisher_fraction:
        Fraction of users that ever publish.
    """

    def __init__(
        self,
        num_users: int,
        mean_rate: float = 0.01,
        rate_sigma: float = 1.0,
        publisher_fraction: float = 1.0,
        seed=None,
    ):
        if num_users <= 0:
            raise ConfigurationError(f"need at least one user, got {num_users}")
        if mean_rate <= 0:
            raise ConfigurationError(f"mean_rate must be positive, got {mean_rate}")
        if rate_sigma < 0:
            raise ConfigurationError(f"rate_sigma must be >= 0, got {rate_sigma}")
        if not math.isfinite(mean_rate * num_users):
            raise ConfigurationError(
                f"mean_rate * num_users overflows ({mean_rate} * {num_users}); "
                "scale the per-user rate down"
            )
        if not (0.0 < publisher_fraction <= 1.0):
            raise ConfigurationError(
                f"publisher_fraction must be in (0, 1], got {publisher_fraction}"
            )
        self.num_users = num_users
        rng = as_generator(seed)
        self._rng = rng
        is_publisher = rng.random(num_users) < publisher_fraction
        if not is_publisher.any():
            is_publisher[int(rng.integers(num_users))] = True
        raw = rng.lognormal(mean=0.0, sigma=rate_sigma, size=num_users)
        raw *= is_publisher
        total = raw.sum()
        # Normalize so the population posts mean_rate * num_users per second.
        self.rates = raw * (mean_rate * num_users / total) if total > 0 else raw
        self.publishers = np.flatnonzero(is_publisher)

    def events_until(self, horizon: float) -> list[PublishEvent]:
        """All publish events in ``[0, horizon)``, time-ordered."""
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        rng = self._rng
        events: list[PublishEvent] = []
        mid = 0
        for user in self.publishers:
            rate = float(self.rates[user])
            if rate <= 0:
                continue
            t = float(rng.exponential(1.0 / rate))
            while t < horizon:
                events.append(PublishEvent(time=t, publisher=int(user), message_id=mid))
                mid += 1
                t += float(rng.exponential(1.0 / rate))
        events.sort(key=lambda e: (e.time, e.message_id))
        return events

    def per_publisher_rates(self) -> np.ndarray:
        """Copy of the per-user posting rates (posts per second)."""
        return self.rates.copy()

    @property
    def total_rate(self) -> float:
        """Population-wide posting rate (posts per second)."""
        return float(self.rates.sum())

    def reweight(self, factors: "dict[int, float]", renormalize: bool = False) -> None:
        """Scale named users' posting rates in place.

        This is how scenario shapers turn an existing workload into a
        skewed one (e.g. a celebrity publisher) without regenerating the
        whole rate vector — the untouched users keep their exact sampled
        rates, so the rest of the stream stays comparable across runs.

        ``factors`` maps user index to a non-negative multiplier. A user
        whose rate becomes positive joins :attr:`publishers`; one scaled
        to zero stops publishing. With ``renormalize=True`` the vector is
        rescaled afterwards so the population total returns to its
        previous value (pure skew, no extra traffic).
        """
        before = self.rates.sum()
        for user, factor in factors.items():
            if not (0 <= user < self.num_users):
                raise ConfigurationError(f"user {user} out of range [0, {self.num_users})")
            if not (factor >= 0.0 and math.isfinite(factor)):
                raise ConfigurationError(
                    f"reweight factor for user {user} must be finite and >= 0, got {factor}"
                )
            self.rates[user] *= factor
        total = self.rates.sum()
        if total <= 0:
            raise ConfigurationError("reweighting left no positive posting rate")
        if renormalize:
            self.rates *= before / total
        self.publishers = np.flatnonzero(self.rates > 0)

    def sample_publishers(self, count: int) -> np.ndarray:
        """Sample ``count`` publishers weighted by their posting rate."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        probs = self.rates / self.rates.sum()
        return self._rng.choice(self.num_users, size=count, replace=True, p=probs)
