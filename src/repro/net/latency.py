"""Per-link latency model.

Peers are placed at random coordinates on a unit square representing
geographic spread; one-way link latency is a propagation term proportional
to the coordinate distance plus a base (stack/last-mile) term with jitter.
This gives the triangle-inequality-respecting heterogeneous latencies the
paper's VM deployment emulated through its network interface.
"""

from __future__ import annotations

import numpy as np

from repro.util.exceptions import ConfigurationError
from repro.util.rng import as_generator

__all__ = ["LatencyModel"]


class LatencyModel:
    """Coordinate-based latency between peers, in milliseconds."""

    def __init__(
        self,
        num_peers: int,
        base_ms: float = 10.0,
        propagation_ms: float = 120.0,
        jitter_ms: float = 5.0,
        seed=None,
    ):
        if num_peers <= 0:
            raise ConfigurationError(f"need at least one peer, got {num_peers}")
        if base_ms < 0 or propagation_ms < 0 or jitter_ms < 0:
            raise ConfigurationError("latency parameters must be non-negative")
        rng = as_generator(seed)
        self.coords = rng.random((num_peers, 2))
        self.base_ms = base_ms
        self.propagation_ms = propagation_ms
        # Per-peer jitter contribution is fixed at provisioning time so that
        # latency(u, v) is deterministic across queries.
        self._peer_jitter = rng.exponential(jitter_ms, size=num_peers) if jitter_ms > 0 else np.zeros(num_peers)

    def __len__(self) -> int:
        return len(self.coords)

    def latency(self, u: int, v: int) -> float:
        """One-way latency of the (u, v) link in milliseconds."""
        if u == v:
            return 0.0
        dist = float(np.linalg.norm(self.coords[u] - self.coords[v]))
        return self.base_ms + self.propagation_ms * dist + float(self._peer_jitter[u] + self._peer_jitter[v]) / 2.0

    def path_latency(self, path) -> float:
        """Sum of link latencies along a node path (paper: l(p,u) = Σ l_i)."""
        nodes = list(path)
        return float(sum(self.latency(nodes[i], nodes[i + 1]) for i in range(len(nodes) - 1)))

    def latency_matrix(self, nodes) -> np.ndarray:
        """Dense latency matrix for a subset of peers (analysis helper)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        pts = self.coords[nodes]
        diff = pts[:, None, :] - pts[None, :, :]
        dist = np.sqrt((diff**2).sum(axis=2))
        jit = (self._peer_jitter[nodes][:, None] + self._peer_jitter[nodes][None, :]) / 2.0
        out = self.base_ms + self.propagation_ms * dist + jit
        np.fill_diagonal(out, 0.0)
        return out
