"""Transfer-time model (1.2 MB notification payloads, §IV-D).

The paper's probe experiment found that the cost driver is not the number
of connections but *simultaneous* transfers: a peer pushing the same 1.2 MB
fragment to ``f`` neighbors at once shares its upload capacity ``f`` ways,
so total time grows linearly in ``f``. These functions reproduce that
model and extend it along dissemination paths and trees.
"""

from __future__ import annotations

import numpy as np

from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.util.exceptions import ConfigurationError

__all__ = ["fanout_transfer_time", "path_transfer_time", "tree_dissemination_time"]

DEFAULT_PAYLOAD_MB = 1.2


def fanout_transfer_time(size_mb: float, upload_mbps: float, download_mbps: float, fanout: int = 1) -> float:
    """Milliseconds to push ``size_mb`` to ``fanout`` receivers at once.

    The sender's upload is split evenly across the simultaneous transfers;
    each receiver is additionally capped by its own download rate (we use
    one representative download rate for the batch).
    """
    if size_mb <= 0:
        raise ConfigurationError(f"size_mb must be positive, got {size_mb}")
    if fanout <= 0:
        raise ConfigurationError(f"fanout must be positive, got {fanout}")
    if upload_mbps <= 0 or download_mbps <= 0:
        raise ConfigurationError("bandwidths must be positive")
    effective_up = upload_mbps / fanout
    rate = min(effective_up, download_mbps)  # Mbps
    return (size_mb * 8.0) / rate * 1000.0  # ms


def path_transfer_time(
    path,
    bandwidth: BandwidthModel,
    latency: LatencyModel,
    size_mb: float = DEFAULT_PAYLOAD_MB,
) -> float:
    """End-to-end time along a relay path: per-hop latency + store-and-forward."""
    nodes = list(path)
    total = 0.0
    for i in range(len(nodes) - 1):
        u, v = nodes[i], nodes[i + 1]
        total += latency.latency(u, v)
        total += fanout_transfer_time(
            size_mb, float(bandwidth.upload_mbps[u]), float(bandwidth.download_mbps[v]), fanout=1
        )
    return total


def tree_dissemination_time(
    tree_children: dict,
    root: int,
    bandwidth: BandwidthModel,
    latency: LatencyModel,
    size_mb: float = DEFAULT_PAYLOAD_MB,
) -> float:
    """Completion time of a dissemination tree (paper Eq. 1: max over leaves).

    ``tree_children`` maps each node to the list of children it forwards to.
    Each forwarding node pushes to all of its children simultaneously, so
    its per-child rate is its upload divided by its fan-out.
    """
    arrival = {root: 0.0}
    worst = 0.0
    stack = [root]
    while stack:
        u = stack.pop()
        children = tree_children.get(u, [])
        if not children:
            worst = max(worst, arrival[u])
            continue
        fanout = len(children)
        for v in children:
            if v in arrival:
                raise ConfigurationError(f"node {v} reached twice; tree_children is not a tree")
            t = (
                arrival[u]
                + latency.latency(u, v)
                + fanout_transfer_time(
                    size_mb,
                    float(bandwidth.upload_mbps[u]),
                    float(bandwidth.download_mbps[v]),
                    fanout=fanout,
                )
            )
            arrival[v] = t
            worst = max(worst, t)
            stack.append(v)
    return worst


def arrival_times(
    tree_children: dict,
    root: int,
    bandwidth: BandwidthModel,
    latency: LatencyModel,
    size_mb: float = DEFAULT_PAYLOAD_MB,
) -> dict:
    """Per-node arrival times for a dissemination tree (analysis helper)."""
    out = {root: 0.0}
    stack = [root]
    while stack:
        u = stack.pop()
        children = tree_children.get(u, [])
        fanout = max(len(children), 1)
        for v in children:
            out[v] = (
                out[u]
                + latency.latency(u, v)
                + fanout_transfer_time(
                    size_mb,
                    float(bandwidth.upload_mbps[u]),
                    float(bandwidth.download_mbps[v]),
                    fanout=fanout,
                )
            )
            stack.append(v)
    return out


def _as_array(x) -> np.ndarray:  # pragma: no cover - small helper
    return np.asarray(x, dtype=np.float64)
