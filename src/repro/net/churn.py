"""Log-normal churn model (paper's citation [20], Berta et al.).

Smartphone-measurement studies find session (online) and inter-session
(offline) durations to be approximately log-normal. The model produces,
per peer, an alternating schedule of online/offline intervals; peers also
carry a per-peer *availability propensity* so that some users are
chronically offline — the behaviour SELECT's CMA tracker is designed to
detect.

The Figure 6 experiment additionally enforces the paper's floor: the
number of live peers never drops below half of the network.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.exceptions import ConfigurationError
from repro.util.rng import as_generator

__all__ = ["ChurnModel", "ChurnSchedule"]


@dataclass(frozen=True)
class ChurnSchedule:
    """Alternating online/offline intervals for one peer.

    ``boundaries`` are the instants at which the peer flips state;
    ``initially_online`` gives the state before the first boundary.
    """

    boundaries: np.ndarray
    initially_online: bool

    def is_online(self, t: float) -> bool:
        """Peer state at time ``t``."""
        flips = int(np.searchsorted(self.boundaries, t, side="right"))
        return self.initially_online ^ (flips % 2 == 1)

    def online_fraction(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the peer spends online."""
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        edges = [0.0] + [float(b) for b in self.boundaries if b < horizon] + [horizon]
        online = self.initially_online
        total = 0.0
        for i in range(len(edges) - 1):
            if online:
                total += edges[i + 1] - edges[i]
            online = not online
        return total / horizon


class ChurnModel:
    """Generates log-normal churn schedules for a population of peers.

    Parameters
    ----------
    num_peers:
        Population size.
    mean_session, sigma_session:
        Log-normal parameters (of the underlying normal) for online
        session length, in simulated seconds.
    mean_offline, sigma_offline:
        Same for offline gaps.
    offline_bias_fraction:
        Fraction of peers with a strong offline bias (their offline gaps
        are stretched), modelling mostly-offline users.
    """

    def __init__(
        self,
        num_peers: int,
        mean_session: float = 600.0,
        sigma_session: float = 1.0,
        mean_offline: float = 200.0,
        sigma_offline: float = 1.0,
        offline_bias_fraction: float = 0.2,
        seed=None,
    ):
        if num_peers <= 0:
            raise ConfigurationError(f"need at least one peer, got {num_peers}")
        if mean_session <= 0 or mean_offline <= 0:
            raise ConfigurationError("mean durations must be positive")
        if not (0.0 <= offline_bias_fraction <= 1.0):
            raise ConfigurationError(
                f"offline_bias_fraction must be in [0, 1], got {offline_bias_fraction}"
            )
        self.num_peers = num_peers
        self._rng = as_generator(seed)
        self._mu_session = np.log(mean_session)
        self._sigma_session = sigma_session
        self._mu_offline = np.log(mean_offline)
        self._sigma_offline = sigma_offline
        self.offline_biased = self._rng.random(num_peers) < offline_bias_fraction

    def schedule(self, peer: int, horizon: float) -> ChurnSchedule:
        """Materialize the alternating schedule for ``peer`` up to ``horizon``."""
        if not (0 <= peer < self.num_peers):
            raise ConfigurationError(f"peer {peer} out of range")
        if horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        rng = self._rng
        stretch = 4.0 if self.offline_biased[peer] else 1.0
        initially_online = bool(rng.random() < (0.35 if self.offline_biased[peer] else 0.8))
        boundaries = []
        t = 0.0
        online = initially_online
        while t < horizon:
            if online:
                dur = float(rng.lognormal(self._mu_session, self._sigma_session))
            else:
                dur = float(rng.lognormal(self._mu_offline, self._sigma_offline)) * stretch
            t += max(dur, 1e-6)
            boundaries.append(t)
            online = not online
        return ChurnSchedule(np.asarray(boundaries, dtype=np.float64), initially_online)

    def schedules(self, horizon: float) -> list[ChurnSchedule]:
        """Schedules for the whole population."""
        return [self.schedule(p, horizon) for p in range(self.num_peers)]

    def online_matrix(self, horizon: float, ticks: int) -> np.ndarray:
        """Boolean (ticks, num_peers) matrix of liveness at sampled instants.

        Enforces the paper's Figure 6 constraint: at every tick at least
        half the population is online (the least-recently-offline peers are
        revived when the raw schedules dip below 50%).
        """
        if ticks <= 0:
            raise ConfigurationError(f"ticks must be positive, got {ticks}")
        times = np.linspace(0.0, horizon, ticks, endpoint=False)
        scheds = self.schedules(horizon)
        out = np.zeros((ticks, self.num_peers), dtype=bool)
        for j, s in enumerate(scheds):
            for i, t in enumerate(times):
                out[i, j] = s.is_online(float(t))
        floor = self.num_peers // 2
        for i in range(ticks):
            deficit = floor - int(out[i].sum())
            if deficit > 0:
                offline = np.flatnonzero(~out[i])
                revive = self._rng.choice(offline, size=deficit, replace=False)
                out[i, revive] = True
        return out
