"""Greedy ring routing with optional Symphony-style lookahead.

A message at peer ``u`` headed for peer ``t``:

1. goes straight to ``t`` if ``t`` is one of ``u``'s links;
2. with lookahead, goes to a link ``w`` of ``u`` that itself links to ``t``
   (delivery within 2 hops — the property SELECT's §III-E relies on);
3. otherwise greedily to the link minimizing ring distance to ``t``'s id.

Because short-range ring links always exist, greedy progress is guaranteed
on a fully online network; with churn, routing detours around offline
peers and reports failure when no live progress is possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.idspace.space import ring_distance
from repro.util.exceptions import RoutingError

__all__ = ["RouteResult", "GreedyRouter"]


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one routing attempt."""

    path: list[int]  # nodes visited, src first; dst last iff delivered
    delivered: bool

    @property
    def hops(self) -> int:
        """Number of overlay hops actually taken."""
        return len(self.path) - 1


class GreedyRouter:
    """Routes over an :class:`~repro.overlay.base.OverlayNetwork`."""

    def __init__(self, overlay, lookahead: bool = True, max_hops: int | None = None):
        self.overlay = overlay
        self.lookahead = lookahead
        n = overlay.graph.num_nodes
        # Generous guard: greedy ring routing is O(n) worst case on a bare
        # ring, so cap at n + slack rather than the O(log n) expectation.
        self.max_hops = int(max_hops) if max_hops is not None else n + 16

    def route(
        self,
        src: int,
        dst: int,
        online: "np.ndarray | None" = None,
        detect_failures: bool = True,
    ) -> RouteResult:
        """Route from ``src`` to ``dst``; ``online`` masks live peers.

        ``detect_failures`` models *liveness knowledge*: when True, peers
        know which of their links are up (they ping them — what a repair
        mechanism buys) and route around dead ones; when False, peers
        forward blindly on stale tables and the message is lost the moment
        it is handed to an offline peer.
        """
        if src == dst:
            return RouteResult(path=[src], delivered=True)
        if online is not None and not (online[src] and online[dst]):
            return RouteResult(path=[src], delivered=False)
        ids = self.overlay.ids
        target_id = ids[dst]
        path = [src]
        visited = {src}
        current = src
        filter_links = online is not None and detect_failures
        for _ in range(self.max_hops):
            links = self._live_links(current, online if filter_links else None)
            if dst in links:
                path.append(dst)
                return RouteResult(path=path, delivered=True)
            nxt = None
            if self.lookahead:
                nxt = self._lookahead_hop(links, dst, online if filter_links else None, visited)
            if nxt is None:
                nxt = self._greedy_hop(links, target_id, visited, ids)
            if nxt is None:
                return RouteResult(path=path, delivered=False)
            if online is not None and not detect_failures and not online[nxt]:
                # Blind forward onto an offline peer: message lost.
                path.append(nxt)
                return RouteResult(path=path, delivered=False)
            path.append(nxt)
            visited.add(nxt)
            current = nxt
        return RouteResult(path=path, delivered=False)

    # -- hop selection -------------------------------------------------------

    def _live_links(self, u: int, online: "np.ndarray | None") -> list[int]:
        links = self.overlay.links(u)
        if online is None:
            return list(links)
        return [w for w in links if online[w]]

    def _lookahead_hop(self, links, dst, online, visited) -> "int | None":
        """A link whose own links contain ``dst`` (2-hop delivery)."""
        best = None
        for w in links:
            if w in visited:
                continue
            if dst in self.overlay.links(w):
                if online is not None and not online[w]:
                    continue
                # Prefer the lexicographically smallest for determinism.
                if best is None or w < best:
                    best = w
        return best

    def _greedy_hop(self, links, target_id, visited, ids) -> "int | None":
        """Unvisited link closest (on the ring) to the target id."""
        best = None
        best_dist = np.inf
        for w in links:
            if w in visited:
                continue
            d = ring_distance(float(ids[w]), float(target_id))
            if d < best_dist or (d == best_dist and (best is None or w < best)):
                best = w
                best_dist = d
        return best

    # -- batch helper ----------------------------------------------------------

    def route_many(self, pairs, online: "np.ndarray | None" = None) -> list[RouteResult]:
        """Route a batch of ``(src, dst)`` pairs."""
        return [self.route(int(s), int(d), online=online) for s, d in pairs]


def require_delivery(result: RouteResult, src: int, dst: int) -> RouteResult:
    """Raise :class:`RoutingError` unless ``result`` delivered."""
    if not result.delivered:
        raise RoutingError(f"route {src} -> {dst} failed after {result.hops} hops")
    return result
