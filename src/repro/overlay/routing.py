"""Greedy ring routing with optional Symphony-style lookahead.

A message at peer ``u`` headed for peer ``t``:

1. goes straight to ``t`` if ``t`` is one of ``u``'s links;
2. with lookahead, goes to a link ``w`` of ``u`` that itself links to ``t``
   (delivery within 2 hops — the property SELECT's §III-E relies on);
3. otherwise greedily to the link minimizing ring distance to ``t``'s id.

Because short-range ring links always exist, greedy progress is guaranteed
on a fully online network; with churn, routing detours around offline
peers and reports failure when no live progress is possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.idspace.space import ring_distance
from repro.util.exceptions import RoutingError

__all__ = ["HopDecision", "RouteResult", "GreedyRouter"]


@dataclass(frozen=True)
class HopDecision:
    """One recorded routing decision (telemetry only, see RouteTracer).

    ``link`` classifies the chosen edge on the sender's table: ``short``
    (successor/predecessor ring link), ``long`` (LSH-selected long
    link), ``successor`` (successor-list backup — only routable after a
    stabilizer promotion), or ``other``. ``rule`` is which clause of the
    greedy router fired: ``direct``, ``lookahead``, or ``greedy``.
    ``ring_distance`` is the remaining distance from the chosen next hop
    to the target identifier.
    """

    src: int
    dst: int
    link: str
    rule: str
    ring_distance: float

    def as_dict(self) -> dict:
        return {
            "from": self.src,
            "to": self.dst,
            "link": self.link,
            "rule": self.rule,
            "ring_distance": self.ring_distance,
        }


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one routing attempt."""

    path: list[int]  # nodes visited, src first; dst last iff delivered
    delivered: bool
    #: per-hop decision records; populated only when the router was asked
    #: to trace (``record_decisions``), None on the default fast path.
    decisions: "tuple[HopDecision, ...] | None" = None

    @property
    def hops(self) -> int:
        """Number of overlay hops actually taken."""
        return len(self.path) - 1


class GreedyRouter:
    """Routes over an :class:`~repro.overlay.base.OverlayNetwork`."""

    def __init__(self, overlay, lookahead: bool = True, max_hops: int | None = None):
        self.overlay = overlay
        self.lookahead = lookahead
        n = overlay.graph.num_nodes
        # Generous guard: greedy ring routing is O(n) worst case on a bare
        # ring, so cap at n + slack rather than the O(log n) expectation.
        self.max_hops = int(max_hops) if max_hops is not None else n + 16
        #: when True, every hop's decision (link type, rule, remaining ring
        #: distance) is recorded on the RouteResult for the route tracer.
        #: Off by default: the fast path pays only this flag check.
        self.record_decisions = False

    def route(
        self,
        src: int,
        dst: int,
        online: "np.ndarray | None" = None,
        detect_failures: bool = True,
    ) -> RouteResult:
        """Route from ``src`` to ``dst``; ``online`` masks live peers.

        ``detect_failures`` models *liveness knowledge*: when True, peers
        know which of their links are up (they ping them — what a repair
        mechanism buys) and route around dead ones; when False, peers
        forward blindly on stale tables and the message is lost the moment
        it is handed to an offline peer.
        """
        return self._route(src, dst, online, detect_failures, None)

    def _route(
        self,
        src: int,
        dst: int,
        online: "np.ndarray | None",
        detect_failures: bool,
        live_cache: "dict[int, list[int]] | None",
    ) -> RouteResult:
        """Single-route implementation; ``live_cache`` is batch scratch.

        ``live_cache`` memoizes per-node live-link filtering across the
        routes of one :meth:`route_many` batch (the online mask is fixed
        for the whole batch, so the filtered lists are reusable).
        """
        if src == dst:
            return RouteResult(path=[src], delivered=True)
        if online is not None and not (online[src] and online[dst]):
            return RouteResult(path=[src], delivered=False)
        ids = self.overlay.ids
        target_id = ids[dst]
        path = [src]
        visited = {src}
        current = src
        filter_links = online is not None and detect_failures
        filter_mask = online if filter_links else None
        decisions: "list[HopDecision] | None" = [] if self.record_decisions else None
        for _ in range(self.max_hops):
            if live_cache is not None:
                links = live_cache.get(current)
                if links is None:
                    links = live_cache[current] = self._live_links(current, filter_mask)
            else:
                links = self._live_links(current, filter_mask)
            if dst in links:
                path.append(dst)
                if decisions is not None:
                    decisions.append(self._decision(current, dst, "direct", target_id, ids))
                    return RouteResult(path=path, delivered=True, decisions=tuple(decisions))
                return RouteResult(path=path, delivered=True)
            nxt = None
            rule = "greedy"
            if self.lookahead:
                nxt = self._lookahead_hop(links, dst, filter_mask, visited)
                if nxt is not None:
                    rule = "lookahead"
            if nxt is None:
                nxt = self._greedy_hop(links, target_id, visited, ids)
            if nxt is None:
                if decisions is not None:
                    return RouteResult(path=path, delivered=False, decisions=tuple(decisions))
                return RouteResult(path=path, delivered=False)
            if decisions is not None:
                decisions.append(self._decision(current, nxt, rule, target_id, ids))
            if online is not None and not detect_failures and not online[nxt]:
                # Blind forward onto an offline peer: message lost.
                path.append(nxt)
                if decisions is not None:
                    return RouteResult(path=path, delivered=False, decisions=tuple(decisions))
                return RouteResult(path=path, delivered=False)
            path.append(nxt)
            visited.add(nxt)
            current = nxt
        if decisions is not None:
            return RouteResult(path=path, delivered=False, decisions=tuple(decisions))
        return RouteResult(path=path, delivered=False)

    # -- telemetry -----------------------------------------------------------

    def _decision(self, u: int, w: int, rule: str, target_id, ids) -> HopDecision:
        """Classify the chosen ``u -> w`` hop for the route tracer."""
        table = self.overlay.tables[u]
        if w == table.successor or w == table.predecessor:
            link = "short"
        elif w in table.long_links:
            link = "long"
        elif w in table.successors:
            link = "successor"
        else:
            link = "other"
        return HopDecision(
            src=u,
            dst=w,
            link=link,
            rule=rule,
            ring_distance=float(ring_distance(float(ids[w]), float(target_id))),
        )

    # -- hop selection -------------------------------------------------------

    def _live_links(self, u: int, online: "np.ndarray | None"):
        """Links of ``u`` that are live under ``online``.

        On the default path this is the table's cached frozenset view —
        zero allocation per hop. All downstream consumers only iterate and
        membership-test, and every hop choice is resolved by a total order
        (smallest distance, then smallest id), so the view's iteration
        order cannot affect routing results.
        """
        links = self.overlay.tables[u].link_view()
        if online is None:
            return links
        return [w for w in links if online[w]]

    def _lookahead_hop(self, links, dst, online, visited) -> "int | None":
        """A link whose own links contain ``dst`` (2-hop delivery)."""
        best = None
        tables = self.overlay.tables
        for w in links:
            if w in visited:
                continue
            if dst in tables[w].link_view():
                if online is not None and not online[w]:
                    continue
                # Prefer the lexicographically smallest for determinism.
                if best is None or w < best:
                    best = w
        return best

    def _greedy_hop(self, links, target_id, visited, ids) -> "int | None":
        """Unvisited link closest (on the ring) to the target id."""
        best = None
        best_dist = np.inf
        for w in links:
            if w in visited:
                continue
            d = ring_distance(float(ids[w]), float(target_id))
            if d < best_dist or (d == best_dist and (best is None or w < best)):
                best = w
                best_dist = d
        return best

    # -- batch helper ----------------------------------------------------------

    def route_many(
        self,
        pairs,
        online: "np.ndarray | None" = None,
        detect_failures: bool = True,
    ) -> list[RouteResult]:
        """Route a batch of ``(src, dst)`` pairs.

        Full parameter parity with :meth:`route` — ``detect_failures``
        selects blind-forward mode exactly as it does for single routes,
        and ``record_decisions`` tracing applies to every route of the
        batch. When liveness filtering is active the per-node live-link
        lists are computed once and shared across the whole batch (the
        online mask is constant for its duration).
        """
        live_cache: "dict[int, list[int]] | None" = (
            {} if online is not None and detect_failures else None
        )
        route = self._route
        return [route(int(s), int(d), online, detect_failures, live_cache) for s, d in pairs]


def require_delivery(result: RouteResult, src: int, dst: int) -> RouteResult:
    """Raise :class:`RoutingError` unless ``result`` delivered."""
    if not result.delivered:
        raise RoutingError(f"route {src} -> {dst} failed after {result.hops} hops")
    return result
