"""Overlay invariant checker (`select-repro doctor`).

Verifies the structural invariants every ring overlay in this repo is
supposed to uphold, over the full population or any live subset:

* **ring connectivity** — following successor pointers from any live
  peer traverses every live peer exactly once (one cycle, no broken or
  dangling pointers);
* **successor/predecessor symmetry** — ``succ(v).predecessor == v``;
* **bounded in-degree** — no peer holds more incoming long links than
  the paper's ``K`` cap (plus the recovery path's small slack).

The checker only *reports*; callers (tests, the CLI, the healing metric)
decide what to do with a violation. That makes it usable both as a hard
assertion on freshly built overlays and as a progress probe while the
stabilizer is still repairing a partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.overlay.base import OverlayNetwork

__all__ = ["DoctorReport", "check_overlay"]


@dataclass
class DoctorReport:
    """Outcome of one invariant sweep over an overlay."""

    #: peers examined (all of them, or the online subset).
    live_peers: int
    #: distinct cycles formed by the live successor pointers.
    ring_count: int
    #: size of the largest such cycle (== live_peers on a healthy ring).
    largest_cycle: int
    #: (peer, successor) pairs whose successor is missing, self, or dead.
    broken_successors: list = field(default_factory=list)
    #: (peer, successor) pairs where succ.predecessor != peer.
    asymmetric_pairs: list = field(default_factory=list)
    #: maximum allowed incoming long links (K + slack).
    in_degree_cap: int = 0
    #: largest observed incoming long-link count.
    max_in_degree: int = 0
    #: peers holding more incoming long links than the cap.
    in_degree_violations: list = field(default_factory=list)

    @property
    def ring_ok(self) -> bool:
        """Successor pointers form one cycle covering every live peer."""
        return (
            not self.broken_successors
            and self.ring_count == 1
            and self.largest_cycle == self.live_peers
        )

    @property
    def consistent_ring(self) -> bool:
        """Ring connectivity plus successor/predecessor symmetry."""
        return self.ring_ok and not self.asymmetric_pairs

    @property
    def ok(self) -> bool:
        """All invariants hold."""
        return self.consistent_ring and not self.in_degree_violations

    def summary(self) -> str:
        """One human-readable line per invariant."""
        lines = [
            f"live peers          : {self.live_peers}",
            f"ring cycles         : {self.ring_count} "
            f"(largest covers {self.largest_cycle})"
            + ("  [OK]" if self.ring_ok else "  [SPLIT]"),
            f"broken successors   : {len(self.broken_successors)}",
            f"asymmetric pred/succ: {len(self.asymmetric_pairs)}",
            f"max in-degree       : {self.max_in_degree} "
            f"(cap {self.in_degree_cap}, "
            f"{len(self.in_degree_violations)} over)",
            f"verdict             : {'OK' if self.ok else 'VIOLATIONS FOUND'}",
        ]
        return "\n".join(lines)


def check_overlay(
    overlay: OverlayNetwork,
    online: "np.ndarray | None" = None,
    in_degree_slack: int = 2,
) -> DoctorReport:
    """Sweep an overlay's invariants; never raises on a violation.

    ``online`` restricts the sweep to the live subset (the view the
    stabilizer is trying to make consistent); ``in_degree_slack`` is the
    tolerance over the ``K`` cap that the recovery admission path is
    allowed to use.
    """
    overlay._check_built()
    n = overlay.graph.num_nodes
    live = [v for v in range(n) if online is None or online[v]]
    live_set = set(live)

    broken: list = []
    asymmetric: list = []
    for v in live:
        succ = overlay.tables[v].successor
        if succ is None or succ == v or succ not in live_set:
            broken.append((v, succ))
            continue
        if overlay.tables[succ].predecessor != v:
            asymmetric.append((v, succ))

    # Cycle census of the successor functional graph restricted to the
    # live peers: every node is on at most one cycle; nodes whose pointer
    # chain leaves the live set (broken) form tails and belong to none.
    state: dict[int, int] = {}  # 1 = on current walk, 2 = finished
    ring_count = 0
    largest = 0
    for start in live:
        if start in state:
            continue
        walk: list[int] = []
        u: "int | None" = start
        while u is not None and u in live_set and u not in state:
            state[u] = 1
            walk.append(u)
            u = overlay.tables[u].successor
        if u is not None and state.get(u) == 1:
            cycle_len = len(walk) - walk.index(u)
            ring_count += 1
            largest = max(largest, cycle_len)
        for w in walk:
            state[w] = 2

    in_degree = np.zeros(n, dtype=np.int64)
    for v in range(n):
        for w in overlay.tables[v].long_links:
            in_degree[w] += 1
    cap = overlay.k_links + max(0, in_degree_slack)
    violations = [int(v) for v in np.flatnonzero(in_degree > cap)]

    return DoctorReport(
        live_peers=len(live),
        ring_count=ring_count,
        largest_cycle=largest,
        broken_successors=broken,
        asymmetric_pairs=asymmetric,
        in_degree_cap=int(cap),
        max_in_degree=int(in_degree.max()) if n else 0,
        in_degree_violations=violations,
    )
