"""Overlay substrate shared by SELECT and the baselines.

Every overlay in this library exposes the same contract
(:class:`OverlayNetwork`): peer identifiers on the unit ring, per-peer link
sets, and greedy routing (optionally with Symphony-style lookahead). The
experiment harness measures hops/relays/latency through this interface so
SELECT and the baselines are compared on identical footing.
"""

from repro.overlay.base import OverlayNetwork, RoutingTable
from repro.overlay.ring import ring_links, successor_lists, successor_of
from repro.overlay.routing import GreedyRouter, RouteResult
from repro.overlay.doctor import DoctorReport, check_overlay

__all__ = [
    "OverlayNetwork",
    "RoutingTable",
    "ring_links",
    "successor_lists",
    "successor_of",
    "GreedyRouter",
    "RouteResult",
    "DoctorReport",
    "check_overlay",
]
