"""Common overlay contract.

:class:`RoutingTable` is the per-peer state every overlay maintains
(short-range ring links plus bounded long-range links, with an incoming
cap). :class:`OverlayNetwork` is the network-wide object the experiment
harness consumes: identifiers, link sets, and routing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.idspace.space import ring_distance
from repro.util.exceptions import ConfigurationError

__all__ = ["RoutingTable", "OverlayNetwork"]


class _LinkSet(set):
    """Long-link set that invalidates the owning table's cached link view.

    Every overlay (SELECT's gossip, the baselines, recovery, stabilize)
    mutates ``table.long_links`` directly with plain set operations, so the
    dirty flag has to live on the set itself — routing the invalidation
    through ``add_long``/``drop_long`` alone would leave the cache stale.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "RoutingTable", iterable=()):
        super().__init__(iterable)
        self._table = table

    def add(self, value):
        self._table._dirty = True
        set.add(self, value)

    def discard(self, value):
        self._table._dirty = True
        set.discard(self, value)

    def remove(self, value):
        self._table._dirty = True
        set.remove(self, value)

    def pop(self):
        self._table._dirty = True
        return set.pop(self)

    def clear(self):
        self._table._dirty = True
        set.clear(self)

    def update(self, *others):
        self._table._dirty = True
        set.update(self, *others)

    def difference_update(self, *others):
        self._table._dirty = True
        set.difference_update(self, *others)

    def intersection_update(self, *others):
        self._table._dirty = True
        set.intersection_update(self, *others)

    def symmetric_difference_update(self, other):
        self._table._dirty = True
        set.symmetric_difference_update(self, other)

    def __ior__(self, other):
        self._table._dirty = True
        return set.__ior__(self, other)

    def __iand__(self, other):
        self._table._dirty = True
        return set.__iand__(self, other)

    def __isub__(self, other):
        self._table._dirty = True
        return set.__isub__(self, other)

    def __ixor__(self, other):
        self._table._dirty = True
        return set.__ixor__(self, other)

    def __reduce__(self):  # pragma: no cover - pickling support
        return (set, (set(self),))


class RoutingTable:
    """Per-peer link state: 2 short-range + up to ``k`` long-range links.

    Mirrors the paper's Table I variable ``R_p``. Long links are outgoing;
    the symmetric *incoming* budget (the paper's ``K`` incoming cap) is
    enforced by the overlay that builds the tables, via
    :meth:`OverlayNetwork.try_accept_incoming`.

    The combined link set is cached: :meth:`link_view` returns a frozenset
    that is rebuilt lazily only after a mutation (long-link add/drop or a
    short-range reassignment). Routing reads links orders of magnitude
    more often than gossip changes them, so the hot paths index this view
    instead of re-materializing a set per call.

    Short-range links live in shared *columns*: the owning overlay passes
    ``columns=(pred_col, succ_col, epoch_cell)`` and this table becomes a
    view over its slot, so ring maintenance can rewrite the whole
    network's predecessors/successors as two array stores plus one epoch
    bump (which lazily invalidates every table's cached view) instead of
    2n property writes. A table constructed without columns owns a
    private one-slot column block — same code path, no branching.
    """

    __slots__ = (
        "owner",
        "_slot",
        "_pred_col",
        "_succ_col",
        "_epoch_cell",
        "_seen_epoch",
        "successors",
        "_long_links",
        "max_long",
        "_dirty",
        "_view",
        "_arr",
    )

    def __init__(self, owner: int, max_long: int, columns=None):
        if max_long < 0:
            raise ConfigurationError(f"max_long must be non-negative, got {max_long}")
        self.owner = owner
        if columns is None:
            self._pred_col = np.full(1, -1, dtype=np.int64)
            self._succ_col = np.full(1, -1, dtype=np.int64)
            self._epoch_cell = [0]
            self._slot = 0
        else:
            self._pred_col, self._succ_col, self._epoch_cell = columns
            self._slot = owner
        self._seen_epoch = self._epoch_cell[0]
        #: ordered successor list (immediate successor first, then backups).
        #: Maintenance/repair state only: the backups are *not* routing
        #: links, so they are excluded from :meth:`all_links` and change
        #: nothing on the default (fault-free) paths.
        self.successors: list[int] = []
        self._long_links: _LinkSet = _LinkSet(self)
        self.max_long = max_long
        self._dirty = True
        self._view: frozenset[int] = frozenset()
        self._arr: np.ndarray = np.zeros(0, dtype=np.int64)

    # -- cached combined view ----------------------------------------------

    @property
    def predecessor(self) -> "int | None":
        value = self._pred_col[self._slot]
        return int(value) if value >= 0 else None

    @predecessor.setter
    def predecessor(self, value: "int | None") -> None:
        self._pred_col[self._slot] = -1 if value is None else int(value)
        self._dirty = True

    @property
    def successor(self) -> "int | None":
        value = self._succ_col[self._slot]
        return int(value) if value >= 0 else None

    @successor.setter
    def successor(self, value: "int | None") -> None:
        self._succ_col[self._slot] = -1 if value is None else int(value)
        self._dirty = True

    @property
    def long_links(self) -> set:
        return self._long_links

    @long_links.setter
    def long_links(self, value) -> None:
        # Wholesale rebinding (``table.long_links = {...}``) re-wraps the
        # new contents so later in-place mutations keep invalidating.
        self._long_links = _LinkSet(self, value)
        self._dirty = True

    def link_view(self) -> frozenset:
        """Cached frozenset of every outgoing link, excluding the owner.

        Identical contents to :meth:`all_links`; rebuilt only when dirty
        or when the shared ring epoch moved past the one this view saw.
        Callers must treat it as immutable (it is shared between calls).
        """
        epoch = self._epoch_cell[0]
        if self._dirty or self._seen_epoch != epoch:
            out = set(self._long_links)
            pred = int(self._pred_col[self._slot])
            succ = int(self._succ_col[self._slot])
            if pred >= 0:
                out.add(pred)
            if succ >= 0:
                out.add(succ)
            out.discard(self.owner)
            self._view = frozenset(out)
            self._arr = np.fromiter(out, dtype=np.int64, count=len(out))
            self._dirty = False
            self._seen_epoch = epoch
        return self._view

    def link_array(self) -> np.ndarray:
        """Cached int64 array of :meth:`link_view` (unspecified order).

        Lets whole-network passes concatenate per-peer link tables without
        re-materializing 10^5-element Python generators per round. Callers
        must treat it as immutable (it is shared between calls).
        """
        self.link_view()
        return self._arr

    def all_links(self) -> set:
        """Every outgoing link (short + long), excluding the owner.

        Returns a fresh mutable copy; hot paths use :meth:`link_view`.
        """
        return set(self.link_view())

    def add_long(self, peer: int) -> bool:
        """Add a long link if budget allows; True on success."""
        if peer == self.owner:
            return False
        if peer in self._long_links:
            return True
        if len(self._long_links) >= self.max_long:
            return False
        self._long_links.add(peer)
        return True

    def drop_long(self, peer: int) -> None:
        """Remove a long link if present."""
        self._long_links.discard(peer)

    def __contains__(self, peer: int) -> bool:
        return peer in self.link_view()


class OverlayNetwork(ABC):
    """A fully built P2P overlay over a social graph.

    Subclasses populate :attr:`ids` (peer positions on the unit ring) and
    :attr:`tables` (per-peer routing tables) in :meth:`build`, and record
    how many superstep iterations construction took in :attr:`iterations`
    (Figure 5's metric; 0 for non-iterative overlays).
    """

    #: human-readable system name used in reports ("SELECT", "Symphony", ...)
    name: str = "overlay"
    #: whether construction is iterative (included in Figure 5)
    iterative: bool = False
    #: whether routing uses a Symphony-style lookahead set by default
    default_lookahead: bool = True

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        self.graph = graph
        n = graph.num_nodes
        # The paper settles on log2(N) direct connections per peer (§IV-C).
        self.k_links = int(k_links) if k_links is not None else max(2, int(np.ceil(np.log2(max(n, 2)))))
        self.ids = np.zeros(n, dtype=np.float64)
        #: columnar ring state (-1 = unset); RoutingTables are views over
        #: their slot, and a ring refresh is two array stores + one bump
        #: of the shared epoch cell.
        self.ring_pred = np.full(n, -1, dtype=np.int64)
        self.ring_succ = np.full(n, -1, dtype=np.int64)
        self._ring_epoch = [0]
        ring_columns = (self.ring_pred, self.ring_succ, self._ring_epoch)
        self.tables: list[RoutingTable] = [
            RoutingTable(v, self.k_links, columns=ring_columns) for v in range(n)
        ]
        self.incoming_count = np.zeros(n, dtype=np.int64)
        self.iterations = 0
        self._built = False

    # -- construction ------------------------------------------------------

    @abstractmethod
    def build(self, seed=None) -> "OverlayNetwork":
        """Construct identifiers and links; returns ``self``."""

    def _mark_built(self) -> None:
        self._built = True

    def _check_built(self) -> None:
        if not self._built:
            raise ConfigurationError(f"{self.name}: call build() before using the overlay")

    # -- incoming-link admission (the paper's K-incoming cap) ---------------

    def try_accept_incoming(self, target: int, upload_rank: "np.ndarray | None" = None) -> bool:
        """Charge one incoming-link slot on ``target``; True if accepted.

        When the cap is hit the paper admits a new connection only if it has
        better bandwidth than an existing one; callers that model bandwidth
        pass ``upload_rank`` and we accept with the same semantics by
        allowing the target to exceed the cap by at most one while shedding
        load elsewhere (the shed is handled by the caller dropping a link).
        """
        if self.incoming_count[target] < self.k_links:
            self.incoming_count[target] += 1
            return True
        return False

    def release_incoming(self, target: int) -> None:
        """Return an incoming-link slot to ``target``."""
        if self.incoming_count[target] > 0:
            self.incoming_count[target] -= 1

    # -- routing / dissemination --------------------------------------------

    def make_router(self, lookahead: "bool | None" = None):
        """Router over this overlay (subclass hook for other schemes)."""
        from repro.overlay.routing import GreedyRouter

        self._check_built()
        look = self.default_lookahead if lookahead is None else lookahead
        return GreedyRouter(self, lookahead=look)

    def disseminate(self, publisher: int, subscribers, router, online=None) -> dict:
        """Routes from ``publisher`` to each subscriber.

        The default is DHT-style unicast: one overlay route per subscriber
        (what a pub/sub system built straight over Symphony does).
        Rendezvous-tree systems (Bayeux, Vitis) and topic-connected
        overlays (OMen) override this with their own dissemination shape.
        Returns ``{subscriber: RouteResult}``.
        """
        ids = self.ids
        pub_id = float(ids[publisher])
        # Ring distance, not |id difference|: subscribers just across the
        # 0/1 wrap are ring-adjacent to the publisher, and sorting them as
        # maximally far skews tree-merge order (and hence relay counts)
        # near the seam.
        ordered = sorted(
            subscribers,
            key=lambda s: (ring_distance(float(ids[s]), pub_id), s),
        )
        return {s: router.route(publisher, s, online=online) for s in ordered}

    # -- read API used by metrics -------------------------------------------

    def links(self, u: int) -> set[int]:
        """Outgoing links (short + long) of peer ``u``.

        Returns the cached frozenset view — treat it as immutable. Use
        ``tables[u].all_links()`` for a mutable copy.
        """
        self._check_built()
        return self.tables[u].link_view()

    def lookahead_set(self, u: int) -> dict[int, set[int]]:
        """Symphony-style ``L_p``: each neighbor's own link set (views)."""
        self._check_built()
        tables = self.tables
        return {w: tables[w].link_view() for w in tables[u].link_view()}

    def degree_vector(self) -> np.ndarray:
        """Outgoing link counts per peer."""
        self._check_built()
        return np.array([len(self.tables[v].link_view()) for v in range(self.graph.num_nodes)])

    def edge_count(self) -> int:
        """Number of distinct undirected overlay edges."""
        self._check_built()
        seen = set()
        for v in range(self.graph.num_nodes):
            for w in self.tables[v].link_view():
                seen.add((v, w) if v < w else (w, v))
        return len(seen)
