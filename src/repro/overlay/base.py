"""Common overlay contract.

:class:`RoutingTable` is the per-peer state every overlay maintains
(short-range ring links plus bounded long-range links, with an incoming
cap). :class:`OverlayNetwork` is the network-wide object the experiment
harness consumes: identifiers, link sets, and routing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.util.exceptions import ConfigurationError

__all__ = ["RoutingTable", "OverlayNetwork"]


class RoutingTable:
    """Per-peer link state: 2 short-range + up to ``k`` long-range links.

    Mirrors the paper's Table I variable ``R_p``. Long links are outgoing;
    the symmetric *incoming* budget (the paper's ``K`` incoming cap) is
    enforced by the overlay that builds the tables, via
    :meth:`OverlayNetwork.try_accept_incoming`.
    """

    __slots__ = ("owner", "predecessor", "successor", "successors", "long_links", "max_long")

    def __init__(self, owner: int, max_long: int):
        if max_long < 0:
            raise ConfigurationError(f"max_long must be non-negative, got {max_long}")
        self.owner = owner
        self.predecessor: int | None = None
        self.successor: int | None = None
        #: ordered successor list (immediate successor first, then backups).
        #: Maintenance/repair state only: the backups are *not* routing
        #: links, so they are excluded from :meth:`all_links` and change
        #: nothing on the default (fault-free) paths.
        self.successors: list[int] = []
        self.long_links: set[int] = set()
        self.max_long = max_long

    def all_links(self) -> set[int]:
        """Every outgoing link (short + long), excluding the owner."""
        out = set(self.long_links)
        if self.predecessor is not None:
            out.add(self.predecessor)
        if self.successor is not None:
            out.add(self.successor)
        out.discard(self.owner)
        return out

    def add_long(self, peer: int) -> bool:
        """Add a long link if budget allows; True on success."""
        if peer == self.owner:
            return False
        if peer in self.long_links:
            return True
        if len(self.long_links) >= self.max_long:
            return False
        self.long_links.add(peer)
        return True

    def drop_long(self, peer: int) -> None:
        """Remove a long link if present."""
        self.long_links.discard(peer)

    def __contains__(self, peer: int) -> bool:
        return peer in self.all_links()


class OverlayNetwork(ABC):
    """A fully built P2P overlay over a social graph.

    Subclasses populate :attr:`ids` (peer positions on the unit ring) and
    :attr:`tables` (per-peer routing tables) in :meth:`build`, and record
    how many superstep iterations construction took in :attr:`iterations`
    (Figure 5's metric; 0 for non-iterative overlays).
    """

    #: human-readable system name used in reports ("SELECT", "Symphony", ...)
    name: str = "overlay"
    #: whether construction is iterative (included in Figure 5)
    iterative: bool = False
    #: whether routing uses a Symphony-style lookahead set by default
    default_lookahead: bool = True

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        self.graph = graph
        n = graph.num_nodes
        # The paper settles on log2(N) direct connections per peer (§IV-C).
        self.k_links = int(k_links) if k_links is not None else max(2, int(np.ceil(np.log2(max(n, 2)))))
        self.ids = np.zeros(n, dtype=np.float64)
        self.tables: list[RoutingTable] = [RoutingTable(v, self.k_links) for v in range(n)]
        self.incoming_count = np.zeros(n, dtype=np.int64)
        self.iterations = 0
        self._built = False

    # -- construction ------------------------------------------------------

    @abstractmethod
    def build(self, seed=None) -> "OverlayNetwork":
        """Construct identifiers and links; returns ``self``."""

    def _mark_built(self) -> None:
        self._built = True

    def _check_built(self) -> None:
        if not self._built:
            raise ConfigurationError(f"{self.name}: call build() before using the overlay")

    # -- incoming-link admission (the paper's K-incoming cap) ---------------

    def try_accept_incoming(self, target: int, upload_rank: "np.ndarray | None" = None) -> bool:
        """Charge one incoming-link slot on ``target``; True if accepted.

        When the cap is hit the paper admits a new connection only if it has
        better bandwidth than an existing one; callers that model bandwidth
        pass ``upload_rank`` and we accept with the same semantics by
        allowing the target to exceed the cap by at most one while shedding
        load elsewhere (the shed is handled by the caller dropping a link).
        """
        if self.incoming_count[target] < self.k_links:
            self.incoming_count[target] += 1
            return True
        return False

    def release_incoming(self, target: int) -> None:
        """Return an incoming-link slot to ``target``."""
        if self.incoming_count[target] > 0:
            self.incoming_count[target] -= 1

    # -- routing / dissemination --------------------------------------------

    def make_router(self, lookahead: "bool | None" = None):
        """Router over this overlay (subclass hook for other schemes)."""
        from repro.overlay.routing import GreedyRouter

        self._check_built()
        look = self.default_lookahead if lookahead is None else lookahead
        return GreedyRouter(self, lookahead=look)

    def disseminate(self, publisher: int, subscribers, router, online=None) -> dict:
        """Routes from ``publisher`` to each subscriber.

        The default is DHT-style unicast: one overlay route per subscriber
        (what a pub/sub system built straight over Symphony does).
        Rendezvous-tree systems (Bayeux, Vitis) and topic-connected
        overlays (OMen) override this with their own dissemination shape.
        Returns ``{subscriber: RouteResult}``.
        """
        ordered = sorted(
            subscribers,
            key=lambda s: (abs(self.ids[s] - self.ids[publisher]), s),
        )
        return {s: router.route(publisher, s, online=online) for s in ordered}

    # -- read API used by metrics -------------------------------------------

    def links(self, u: int) -> set[int]:
        """Outgoing links (short + long) of peer ``u``."""
        self._check_built()
        return self.tables[u].all_links()

    def lookahead_set(self, u: int) -> dict[int, set[int]]:
        """Symphony-style ``L_p``: each neighbor's own link set."""
        self._check_built()
        return {w: self.tables[w].all_links() for w in self.tables[u].all_links()}

    def degree_vector(self) -> np.ndarray:
        """Outgoing link counts per peer."""
        self._check_built()
        return np.array([len(self.tables[v].all_links()) for v in range(self.graph.num_nodes)])

    def edge_count(self) -> int:
        """Number of distinct undirected overlay edges."""
        self._check_built()
        seen = set()
        for v in range(self.graph.num_nodes):
            for w in self.tables[v].all_links():
                seen.add((min(v, w), max(v, w)))
        return len(seen)
