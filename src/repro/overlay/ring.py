"""Ring (short-range) link computation.

Every overlay keeps two short-range links per peer — its successor and
predecessor in identifier order — which is what guarantees that greedy
routing always terminates and that the whole network stays reachable (the
paper's correctness argument in §V: the ring lets messages reach all
peers even when long links are socially skewed).
"""

from __future__ import annotations

import numpy as np

from repro.util.exceptions import ConfigurationError

__all__ = ["ring_links", "successor_lists", "successor_of", "predecessor_of"]


def ring_links(ids: np.ndarray) -> list[tuple[int, int]]:
    """Per-peer ``(predecessor, successor)`` node indices by id order.

    Ties in identifier value are broken by node index so the ring is
    always a single cycle.
    """
    n = len(ids)
    if n < 2:
        raise ConfigurationError("a ring needs at least two peers")
    order = np.lexsort((np.arange(n), ids))  # clockwise tour
    pred = np.empty(n, dtype=np.int64)
    succ = np.empty(n, dtype=np.int64)
    for pos, node in enumerate(order):
        succ[node] = order[(pos + 1) % n]
        pred[node] = order[(pos - 1) % n]
    return [(int(pred[v]), int(succ[v])) for v in range(n)]


def successor_lists(ids: np.ndarray, length: int) -> list[list[int]]:
    """Per-peer list of the next ``length`` peers clockwise (self excluded).

    The first entry of each list is the peer's immediate successor (same
    tie-break as :func:`ring_links`); the rest are the backups a peer
    falls to when its successor dies — the Chord/Symphony successor-list
    mechanism the stabilization layer relies on to survive up to
    ``length - 1`` simultaneous failures.
    """
    n = len(ids)
    if n < 2:
        raise ConfigurationError("a ring needs at least two peers")
    if length < 1:
        raise ConfigurationError(f"successor list length must be >= 1, got {length}")
    order = np.lexsort((np.arange(n), ids))
    depth = min(length, n - 1)
    lists: list[list[int]] = [[] for _ in range(n)]
    for pos, node in enumerate(order):
        lists[int(node)] = [int(order[(pos + j) % n]) for j in range(1, depth + 1)]
    return lists


def successor_of(ids: np.ndarray, point: float) -> int:
    """Node responsible for ``point``: the first id clockwise from it.

    This is the DHT "manager" lookup used when a long link targets a ring
    position rather than a concrete peer (Symphony) or when a topic hash
    needs a rendezvous node (Bayeux, Vitis).
    """
    n = len(ids)
    order = np.lexsort((np.arange(n), ids))
    sorted_ids = ids[order]
    pos = int(np.searchsorted(sorted_ids, point, side="left"))
    return int(order[pos % n])


def predecessor_of(ids: np.ndarray, point: float) -> int:
    """Last node counter-clockwise from ``point``."""
    n = len(ids)
    order = np.lexsort((np.arange(n), ids))
    sorted_ids = ids[order]
    pos = int(np.searchsorted(sorted_ids, point, side="left")) - 1
    return int(order[pos % n])
