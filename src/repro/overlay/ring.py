"""Ring (short-range) link computation.

Every overlay keeps two short-range links per peer — its successor and
predecessor in identifier order — which is what guarantees that greedy
routing always terminates and that the whole network stays reachable (the
paper's correctness argument in §V: the ring lets messages reach all
peers even when long links are socially skewed).

All helpers route through :class:`RingIndex`, a cached sorted view of the
identifier array. Lookups used to re-run a full ``np.lexsort`` per call —
O(n log n) for every topic-hash or rendezvous query — so repeated queries
against unchanged ids (the common case between gossip barriers) now reuse
one sort. Callers that mutate ids can hold a ``RingIndex`` and
:meth:`~RingIndex.invalidate` it explicitly; the module-level functions
fall back to an automatic cache that revalidates by content comparison
(O(n) memcmp instead of O(n log n) sort).
"""

from __future__ import annotations

import numpy as np

from repro.util.exceptions import ConfigurationError

__all__ = [
    "RingIndex",
    "ring_links",
    "successor_lists",
    "successor_of",
    "predecessor_of",
]


class RingIndex:
    """Sorted view of an identifier ring, built lazily and reused.

    Ties in identifier value are broken by node index, matching the
    clockwise tour the per-call helpers always produced, so the ring is
    always a single cycle.
    """

    __slots__ = ("_ids", "_snapshot", "_order", "_sorted_ids", "_pred", "_succ")

    def __init__(self, ids):
        self._ids = ids
        self._snapshot = None
        self._order = None
        self._sorted_ids = None
        self._pred = None
        self._succ = None

    def invalidate(self) -> None:
        """Drop the cached sort; the next query re-sorts."""
        self._snapshot = None
        self._order = None
        self._sorted_ids = None
        self._pred = None
        self._succ = None

    def matches(self, ids: np.ndarray) -> bool:
        """Whether the cached sort is still valid for ``ids``."""
        return self._snapshot is not None and np.array_equal(self._snapshot, ids)

    def _ensure(self):
        if self._order is None:
            ids = np.asarray(self._ids, dtype=np.float64)
            n = len(ids)
            self._snapshot = ids.copy()
            self._order = np.lexsort((np.arange(n), ids))
            self._sorted_ids = ids[self._order]
            self._pred = None
            self._succ = None
        return self._order, self._sorted_ids

    @property
    def order(self) -> np.ndarray:
        """Node indices in clockwise (sorted-id) order."""
        return self._ensure()[0]

    @property
    def sorted_ids(self) -> np.ndarray:
        """Identifier values in clockwise order."""
        return self._ensure()[1]

    def pred_succ(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-node ``(predecessor, successor)`` index arrays."""
        if self._pred is None:
            order, _ = self._ensure()
            n = len(order)
            if n < 2:
                raise ConfigurationError("a ring needs at least two peers")
            pred = np.empty(n, dtype=np.int64)
            succ = np.empty(n, dtype=np.int64)
            succ[order] = np.roll(order, -1)
            pred[order] = np.roll(order, 1)
            self._pred, self._succ = pred, succ
        return self._pred, self._succ

    def successor_matrix(self, length: int) -> np.ndarray:
        """``(n, depth)`` array: column ``j`` is each node's ``j+1``-th successor."""
        if length < 1:
            raise ConfigurationError(f"successor list length must be >= 1, got {length}")
        order, _ = self._ensure()
        n = len(order)
        if n < 2:
            raise ConfigurationError("a ring needs at least two peers")
        depth = min(length, n - 1)
        mat = np.empty((n, depth), dtype=np.int64)
        for j in range(1, depth + 1):
            mat[order, j - 1] = np.roll(order, -j)
        return mat

    def successor_of(self, point) -> int | np.ndarray:
        """First node clockwise from ``point`` (scalar or array of points)."""
        order, sorted_ids = self._ensure()
        n = len(order)
        pos = np.searchsorted(sorted_ids, point, side="left")
        if np.ndim(point) == 0:
            return int(order[int(pos) % n])
        return order[pos % n]

    def predecessor_of(self, point) -> int | np.ndarray:
        """Last node counter-clockwise from ``point`` (scalar or array)."""
        order, sorted_ids = self._ensure()
        n = len(order)
        pos = np.searchsorted(sorted_ids, point, side="left") - 1
        if np.ndim(point) == 0:
            return int(order[int(pos) % n])
        return order[pos % n]


#: Automatic per-array cache for the module-level helpers. Keyed by array
#: identity; a hit is only trusted after a content comparison, so mutated
#: or recycled arrays re-sort instead of serving stale views.
_INDEX_CACHE: dict[int, RingIndex] = {}
_INDEX_CACHE_MAX = 8


def _index_for(ids) -> RingIndex:
    arr = np.asarray(ids, dtype=np.float64)
    key = id(ids)
    entry = _INDEX_CACHE.get(key)
    if entry is not None:
        if entry.matches(arr):
            return entry
        entry.invalidate()
        entry._ids = arr
        return entry
    if len(_INDEX_CACHE) >= _INDEX_CACHE_MAX:
        _INDEX_CACHE.pop(next(iter(_INDEX_CACHE)))
    entry = RingIndex(arr)
    _INDEX_CACHE[key] = entry
    return entry


def ring_links(ids: np.ndarray, index: RingIndex | None = None) -> list[tuple[int, int]]:
    """Per-peer ``(predecessor, successor)`` node indices by id order.

    Ties in identifier value are broken by node index so the ring is
    always a single cycle.
    """
    idx = index if index is not None else _index_for(ids)
    pred, succ = idx.pred_succ()
    return list(zip(pred.tolist(), succ.tolist()))


def successor_lists(ids: np.ndarray, length: int, index: RingIndex | None = None) -> list[list[int]]:
    """Per-peer list of the next ``length`` peers clockwise (self excluded).

    The first entry of each list is the peer's immediate successor (same
    tie-break as :func:`ring_links`); the rest are the backups a peer
    falls to when its successor dies — the Chord/Symphony successor-list
    mechanism the stabilization layer relies on to survive up to
    ``length - 1`` simultaneous failures.
    """
    idx = index if index is not None else _index_for(ids)
    return idx.successor_matrix(length).tolist()


def successor_of(ids: np.ndarray, point: float, index: RingIndex | None = None) -> int:
    """Node responsible for ``point``: the first id clockwise from it.

    This is the DHT "manager" lookup used when a long link targets a ring
    position rather than a concrete peer (Symphony) or when a topic hash
    needs a rendezvous node (Bayeux, Vitis).
    """
    idx = index if index is not None else _index_for(ids)
    return idx.successor_of(point)


def predecessor_of(ids: np.ndarray, point: float, index: RingIndex | None = None) -> int:
    """Last node counter-clockwise from ``point``."""
    idx = index if index is not None else _index_for(ids)
    return idx.predecessor_of(point)
