"""Shared machinery for the iterative gossip baselines (Vitis, OMen).

Both systems start from a plain DHT (uniform identifiers on the ring) and
then *discover* which peers are worth linking to through rounds of
peer sampling — Vitis by interest similarity, OMen by membership in its
target topic-connected overlay. Discovery through uniform sampling is
slow by nature: a peer must stumble on its good candidates among all N
peers, which is why both need several times more iterations to organize
than SELECT (Figure 5), whose candidates are handed to it by the social
graph.

The round loop is T-Man style: each peer keeps the best ``k`` contacts
seen so far (by a subclass-defined score) and its long links *are* that
ranked set. Construction has converged when no peer's ranked set changes
for a few consecutive rounds.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.idspace.hashing import uniform_hashes
from repro.overlay.base import OverlayNetwork
from repro.overlay.ring import ring_links
from repro.util.rng import as_generator

__all__ = ["RankedGossipOverlay"]


class RankedGossipOverlay(OverlayNetwork):
    """DHT + gossip contact ranking. Subclasses define the ranking score."""

    iterative = True
    default_lookahead = True
    #: uniform peer samples evaluated per peer per round
    samples_per_round = 1
    #: consecutive quiet rounds to declare convergence
    convergence_rounds = 3
    #: hard cap on construction rounds
    max_rounds = 400

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        super().__init__(graph, k_links)
        # candidate -> score cache per peer (discovered contacts)
        self._scores: list[dict[int, float]] = [dict() for _ in range(graph.num_nodes)]

    # -- subclass hooks ------------------------------------------------------

    def prepare(self, rng: np.random.Generator) -> None:
        """Set up target structures before gossip starts (optional)."""

    def score(self, v: int, u: int) -> float:
        """Attractiveness of contact ``u`` for peer ``v``; <= 0 = useless."""
        raise NotImplementedError

    # -- construction -----------------------------------------------------------

    def build(self, seed=None) -> "OverlayNetwork":
        """DHT bootstrap, then T-Man-style ranked gossip to quiescence."""
        rng = as_generator(seed)
        n = self.graph.num_nodes
        salt = int(rng.integers(2**31 - 1))
        self.ids = uniform_hashes(range(n), salt=salt)
        for v, (pred, succ) in enumerate(ring_links(self.ids)):
            self.tables[v].predecessor = pred
            self.tables[v].successor = succ
        self.prepare(rng)
        quiet = 0
        rounds = 0
        for _ in range(self.max_rounds):
            rounds += 1
            changes = self._gossip_round(rng)
            if changes <= max(1, n // 50):
                quiet += 1
                if quiet >= self.convergence_rounds:
                    break
            else:
                quiet = 0
        self.iterations = rounds
        self._mark_built()
        return self

    def _gossip_round(self, rng: np.random.Generator) -> int:
        """One sampling round; returns the number of peers that re-ranked."""
        n = self.graph.num_nodes
        changes = 0
        samples = rng.integers(0, n, size=(n, self.samples_per_round))
        for v in range(n):
            learned = False
            known = self._scores[v]
            candidates = set(int(u) for u in samples[v] if u != v)
            # Gossip also exposes the sampled peer's contacts (exchange of
            # views), doubling effective discovery without extra rounds.
            for u in list(candidates):
                view = self.tables[u].long_links
                if view:
                    candidates.add(next(iter(view)))
            candidates.discard(v)
            for u in candidates:
                if u in known:
                    continue
                s = self.score(v, u)
                if s > 0:
                    known[u] = s
                    learned = True
            if learned:
                # Convergence is about the *materialized* topology: count a
                # change only when the ranked link set actually moved.
                before = set(self.tables[v].long_links)
                self._rerank(v)
                if self.tables[v].long_links != before:
                    changes += 1
        return changes

    def _rerank(self, v: int) -> None:
        """Long links = the k best-scoring discovered contacts."""
        known = self._scores[v]
        top = sorted(known, key=lambda u: (-known[u], u))[: self.k_links]
        self.tables[v].long_links = set(top)

    # -- shared dissemination helper ----------------------------------------------

    def _members_subgraph_bfs(self, root: int, members: set) -> dict:
        """BFS paths from ``root`` over overlay links restricted to members.

        Returns ``{node: path_from_root}`` for every member reached.
        Used by cluster/TCO dissemination: hops between co-subscribers
        never touch a relay.
        """
        paths = {root: [root]}
        frontier = [root]
        while frontier:
            nxt = []
            for u in frontier:
                for w in self.tables[u].all_links():
                    if w in members and w not in paths:
                        paths[w] = paths[u] + [w]
                        nxt.append(w)
            frontier = nxt
        return paths
