"""Vitis overlay (Rahimian, Girdzijauskas et al.; IPDPS 2011).

Vitis is a gossip-based hybrid pub/sub overlay: peers sit on a ring
(rendezvous routing always works) and additionally organize into
*clusters* of peers subscribed to similar topics, discovered by a
peer-sampling service. Messages spread inside a cluster without relays;
subscribers outside any cluster path are reached through rendezvous
(greedy ring) routing.

In the paper's social workload every user is a topic whose subscribers
are its friends, so interest similarity between two peers is the overlap
of their subscription sets — i.e. how many common friends they have plus
their own mutual subscription. Peers with high social degree score high
for many others, which concentrates incoming connections on hubs: exactly
the load imbalance Figure 4 reports for Vitis.
"""

from __future__ import annotations

from repro.baselines.clustered import RankedGossipOverlay
from repro.graphs.graph import SocialGraph
from repro.overlay.routing import RouteResult

__all__ = ["VitisOverlay"]


class VitisOverlay(RankedGossipOverlay):
    """Gossip-clustered hybrid pub/sub overlay."""

    name = "Vitis"
    samples_per_round = 1

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        super().__init__(graph, k_links)
        # subscription set of a peer: the topics (publishers) it follows =
        # its friends, plus its own topic.
        self._subs = [
            frozenset(int(f) for f in graph.neighbors(v)) | {v}
            for v in range(graph.num_nodes)
        ]

    def score(self, v: int, u: int) -> float:
        """Interest similarity: shared subscriptions between ``v`` and ``u``."""
        return float(len(self._subs[v] & self._subs[u]))

    def disseminate(self, publisher, subscribers, router, online=None) -> dict:
        """Cluster-first dissemination with rendezvous fallback.

        The publisher floods its cluster neighbors subscribed to the topic;
        any subscriber not reached through the cluster is served through
        plain greedy ring routing (relays appear there).
        """
        members = {publisher}
        members.update(subscribers)
        if online is not None:
            members = {m for m in members if online[m]}
        paths = self._members_subgraph_bfs(publisher, members)
        results: dict[int, RouteResult] = {}
        for s in subscribers:
            if s in paths:
                results[s] = RouteResult(path=list(paths[s]), delivered=True)
            else:
                results[s] = router.route(publisher, s, online=online)
        return results

    def cluster_connectivity(self, topic: int) -> float:
        """Fraction of the topic's subscribers reachable inside the cluster.

        Analysis helper used by the iteration experiments: Vitis is
        "organized" once most topics are cluster-connected.
        """
        self._check_built()
        subs = [int(f) for f in self.graph.neighbors(topic)]
        if not subs:
            return 1.0
        members = set(subs) | {topic}
        paths = self._members_subgraph_bfs(topic, members)
        return sum(1 for s in subs if s in paths) / len(subs)
