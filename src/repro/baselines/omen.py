"""OMen overlay (Chen, Vitenberg, Jacobsen; DEBS 2016).

OMen maintains a Topic-Connected Overlay per topic — computed with the
divide-and-conquer Greedy-Merge approximation of
:mod:`repro.baselines.tco` — over a small-world substrate, plus *shadow
sets*: per-peer backup candidates that step in when a TCO neighbor
departs (churn mending).

The TCO tells each peer which partners it *should* connect to; peers
still have to find them through the overlay's sampling service, so
construction is iterative. Because the targets are precomputed and
shadow/candidate information piggybacks on gossip, OMen discovers its
partners faster than Vitis's blind similarity search — but still an order
slower than SELECT, which starts from the social graph (Figure 5).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.baselines.clustered import RankedGossipOverlay
from repro.baselines.tco import build_tco
from repro.graphs.graph import SocialGraph
from repro.overlay.routing import RouteResult

__all__ = ["OmenOverlay"]


class OmenOverlay(RankedGossipOverlay):
    """Topic-connected overlay with shadow-set mending."""

    name = "OMen"
    samples_per_round = 2  # candidate exchange accelerates discovery
    #: shadow set size per TCO partner (backups kept for churn mending)
    shadow_size = 2

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        super().__init__(graph, k_links)
        self._target: list[set[int]] = [set() for _ in range(graph.num_nodes)]
        self._shadow: list[set[int]] = [set() for _ in range(graph.num_nodes)]
        self._topics = {
            b: frozenset(int(f) for f in graph.neighbors(b)) | {b}
            for b in range(graph.num_nodes)
        }

    # -- target structure -------------------------------------------------------

    def prepare(self, rng: np.random.Generator) -> None:
        """Compute the TCO target edges and the shadow sets."""
        # Degree cap: twice the link budget, the slack OMen's mending needs.
        edges = build_tco(self._topics, max_degree=2 * self.k_links)
        for u, v in edges:
            self._target[u].add(v)
            self._target[v].add(u)
        # Shadow sets: for each peer, low-degree co-subscribers that could
        # replace a failed partner.
        co_subscribers: dict[int, set[int]] = defaultdict(set)
        for members in self._topics.values():
            for m in members:
                co_subscribers[m].update(members)
        for v in range(self.graph.num_nodes):
            candidates = sorted(
                co_subscribers[v] - self._target[v] - {v},
                key=lambda u: (len(self._target[u]), u),
            )
            self._shadow[v] = set(candidates[: self.shadow_size * self.shadow_size])

    def score(self, v: int, u: int) -> float:
        """TCO partners first, shadow candidates as weak attractors."""
        if u in self._target[v]:
            return 2.0
        if u in self._shadow[v]:
            return 1.0
        return 0.0

    def _rerank(self, v: int) -> None:
        """Links = discovered TCO partners, then shadows, up to budget.

        The budget is the same bounded ``k`` every system gets: TCO
        partners beyond it cannot be materialized, which leaves some
        topics partially disconnected and is why OMen still shows relay
        nodes and hotspot load in the paper's figures.
        """
        known = self._scores[v]
        ranked = sorted(known, key=lambda u: (-known[u], u))
        self.tables[v].long_links = set(ranked[: self.k_links])

    # -- churn mending ---------------------------------------------------------------

    def mend(self, online: np.ndarray) -> int:
        """Replace offline TCO partners with live shadow candidates.

        Returns the number of replacements (the shadow-set repair the
        OMen paper contributes). Called by the churn experiment once per
        maintenance tick.
        """
        self._check_built()
        repairs = 0
        for v in range(self.graph.num_nodes):
            if not online[v]:
                continue
            table = self.tables[v]
            dead = [u for u in table.long_links if not online[u]]
            for u in dead:
                replacement = next(
                    (w for w in sorted(self._shadow[v]) if online[w] and w not in table.long_links),
                    None,
                )
                table.long_links.discard(u)
                if replacement is not None:
                    table.long_links.add(replacement)
                    repairs += 1
        return repairs

    # -- dissemination -----------------------------------------------------------------

    def disseminate(self, publisher, subscribers, router, online=None) -> dict:
        """Flood the topic's TCO component; DHT fallback for the rest."""
        members = {publisher}
        members.update(subscribers)
        if online is not None:
            members = {m for m in members if online[m]}
        paths = self._members_subgraph_bfs(publisher, members)
        results: dict[int, RouteResult] = {}
        for s in subscribers:
            if s in paths:
                results[s] = RouteResult(path=list(paths[s]), delivered=True)
            else:
                results[s] = router.route(publisher, s, online=online)
        return results

    def tco_connectivity(self, topic: int) -> float:
        """Fraction of a topic's subscribers inside the flooded component."""
        self._check_built()
        subs = [int(f) for f in self.graph.neighbors(topic)]
        if not subs:
            return 1.0
        members = set(subs) | {topic}
        paths = self._members_subgraph_bfs(topic, members)
        return sum(1 for s in subs if s in paths) / len(subs)
