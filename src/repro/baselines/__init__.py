"""Baseline pub/sub systems the paper compares against (Section IV-C).

* :class:`SymphonyOverlay` — Manku et al.'s small-world DHT: uniform ids,
  harmonic long links, greedy routing with lookahead; pub/sub is plain
  unicast over the DHT.
* :class:`BayeuxOverlay` — Zhuang et al.: a prefix-routing DHT (Tapestry)
  with a per-topic rendezvous root and a spanning tree of subscriber join
  paths.
* :class:`VitisOverlay` — Rahimian et al.: ring + gossip-grown interest
  clusters with rendezvous routing between them.
* :class:`OmenOverlay` — Chen et al.: topic-connected overlays built with
  a Greedy-Merge approximation, plus shadow sets for churn repair.

All of them implement the common :class:`~repro.overlay.base.OverlayNetwork`
contract so the experiment harness measures every system identically.
"""

from repro.baselines.symphony import SymphonyOverlay
from repro.baselines.bayeux import BayeuxOverlay
from repro.baselines.random_overlay import RandomOverlay
from repro.baselines.vitis import VitisOverlay
from repro.baselines.omen import OmenOverlay
from repro.baselines.greedy_merge import greedy_merge_edges, topic_components
from repro.baselines.tco import build_tco
from repro.baselines.registry import SYSTEMS, build_overlay, system_names

__all__ = [
    "SymphonyOverlay",
    "BayeuxOverlay",
    "RandomOverlay",
    "VitisOverlay",
    "OmenOverlay",
    "greedy_merge_edges",
    "topic_components",
    "build_tco",
    "SYSTEMS",
    "build_overlay",
    "system_names",
]
