"""Greedy Merge (Chockler, Melamed, Tock, Vitenberg; PODC 2007).

The theoretical origin of topic-connected overlay design: given a set of
topics, each with its subscriber set, add overlay edges until every
topic's subscribers induce a connected subgraph, minimizing edges. GM
repeatedly adds the edge that merges the most per-topic components —
a logarithmic approximation of the optimum, at the cost of unbalanced
degrees (the hotspot problem the paper points out).

This module is the reference implementation used by the OMen baseline's
ablation and by the tests; :mod:`repro.baselines.tco` holds the faster
divide-and-conquer approximation OMen actually builds with.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["topic_components", "greedy_merge_edges"]


class _UnionFind:
    """Plain union-find with path compression."""

    def __init__(self, items):
        self.parent = {x: x for x in items}

    def find(self, x):
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True

    def components(self) -> int:
        return sum(1 for x in self.parent if self.find(x) == x)


def topic_components(topics: dict, edges) -> dict:
    """Number of connected components per topic under ``edges``.

    ``topics`` maps topic id -> iterable of member nodes. A topic is
    *topic-connected* when its component count is 1.
    """
    out = {}
    for t, members in topics.items():
        members = list(members)
        uf = _UnionFind(members)
        member_set = set(members)
        for u, v in edges:
            if u in member_set and v in member_set:
                uf.union(u, v)
        out[t] = uf.components() if members else 0
    return out


def greedy_merge_edges(topics: dict, max_degree: "int | None" = None) -> set:
    """Run Greedy Merge: edges that make every topic connected.

    Each iteration adds the candidate edge whose endpoints co-subscribe to
    the most still-disconnected topics (the edge's *contribution*), until
    no edge contributes — either all topics are connected or the degree
    cap blocks further progress.

    Returns the set of added edges as ``(u, v)`` with ``u < v``.
    """
    # Per-topic union-find; candidate edges are co-subscriber pairs.
    forests = {t: _UnionFind(list(members)) for t, members in topics.items()}
    membership: dict[int, set] = defaultdict(set)
    for t, members in topics.items():
        for m in members:
            membership[m].add(t)
    nodes = sorted(membership)
    degree = {v: 0 for v in nodes}
    chosen: set[tuple[int, int]] = set()

    def contribution(u: int, v: int) -> int:
        shared = membership[u] & membership[v]
        return sum(1 for t in shared if forests[t].find(u) != forests[t].find(v))

    # Candidate pool: pairs sharing at least one topic.
    candidates: set[tuple[int, int]] = set()
    for t, members in topics.items():
        members = sorted(members)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                candidates.add((u, v))

    while True:
        best_edge = None
        best_gain = 0
        for u, v in candidates:
            if (u, v) in chosen:
                continue
            if max_degree is not None and (degree[u] >= max_degree or degree[v] >= max_degree):
                continue
            gain = contribution(u, v)
            if gain > best_gain or (gain == best_gain and gain > 0 and (best_edge is None or (u, v) < best_edge)):
                best_gain = gain
                best_edge = (u, v)
        if best_edge is None or best_gain == 0:
            break
        u, v = best_edge
        chosen.add(best_edge)
        degree[u] += 1
        degree[v] += 1
        for t in membership[u] & membership[v]:
            forests[t].union(u, v)
    return chosen
