"""Random overlay — the "no selection algorithm" control of Figure 7.

Uniform identifiers, ``k`` uniformly random long links per peer. No
social awareness, no distance structure beyond the ring. Dissemination
over it shows the unbounded fan-out/latency growth the paper contrasts
SELECT against.
"""

from __future__ import annotations

from repro.graphs.graph import SocialGraph
from repro.idspace.hashing import uniform_hashes
from repro.overlay.base import OverlayNetwork
from repro.overlay.ring import ring_links
from repro.util.rng import as_generator

__all__ = ["RandomOverlay"]


class RandomOverlay(OverlayNetwork):
    """Ring + uniformly random long links."""

    name = "Random"
    iterative = False
    default_lookahead = False

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        super().__init__(graph, k_links)

    def build(self, seed=None) -> "RandomOverlay":
        """Assign uniform ids and k uniformly random long links per peer."""
        rng = as_generator(seed)
        n = self.graph.num_nodes
        salt = int(rng.integers(2**31 - 1))
        self.ids = uniform_hashes(range(n), salt=salt)
        for v, (pred, succ) in enumerate(ring_links(self.ids)):
            self.tables[v].predecessor = pred
            self.tables[v].successor = succ
        for v in range(n):
            table = self.tables[v]
            attempts = 0
            while len(table.long_links) < self.k_links and attempts < self.k_links * 8:
                attempts += 1
                u = int(rng.integers(n))
                if u == v or u in table.long_links:
                    continue
                if self.try_accept_incoming(u):
                    table.long_links.add(u)
        self.iterations = 0
        self._mark_built()
        return self
