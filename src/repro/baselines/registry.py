"""System registry: build any evaluated overlay by name.

The experiment harness iterates ``system_names()`` to produce the same
five-system comparisons as the paper's figures.
"""

from __future__ import annotations

from repro.baselines.bayeux import BayeuxOverlay
from repro.baselines.omen import OmenOverlay
from repro.baselines.random_overlay import RandomOverlay
from repro.baselines.symphony import SymphonyOverlay
from repro.baselines.vitis import VitisOverlay
from repro.graphs.graph import SocialGraph
from repro.overlay.base import OverlayNetwork
from repro.util.exceptions import ConfigurationError

__all__ = ["SYSTEMS", "system_names", "build_overlay"]


def _build_select(graph: SocialGraph, k_links, **kwargs) -> OverlayNetwork:
    from repro.core.select import SelectOverlay

    return SelectOverlay(graph, k_links=k_links, **kwargs)


SYSTEMS = {
    "select": _build_select,
    "symphony": SymphonyOverlay,
    "bayeux": BayeuxOverlay,
    "vitis": VitisOverlay,
    "omen": OmenOverlay,
    "random": RandomOverlay,
}

_DISPLAY = {
    "select": "SELECT",
    "symphony": "Symphony",
    "bayeux": "Bayeux",
    "vitis": "Vitis",
    "omen": "OMen",
    "random": "Random",
}


def system_names(iterative_only: bool = False) -> list[str]:
    """Evaluated systems in the paper's presentation order."""
    names = ["select", "symphony", "bayeux", "vitis", "omen"]
    if iterative_only:
        # Figure 5 excludes Symphony and Bayeux (non-iterative construction).
        names = ["select", "vitis", "omen"]
    return names


def display_name(name: str) -> str:
    """Human-readable system name for reports."""
    return _DISPLAY.get(name.lower(), name)


def build_overlay(
    name: str,
    graph: SocialGraph,
    k_links: int | None = None,
    seed=None,
    **kwargs,
) -> OverlayNetwork:
    """Construct and build the named overlay over ``graph``."""
    key = name.lower()
    if key not in SYSTEMS:
        raise ConfigurationError(f"unknown system {name!r}; available: {sorted(SYSTEMS)}")
    overlay = SYSTEMS[key](graph, k_links=k_links, **kwargs)
    return overlay.build(seed=seed)
