"""Symphony overlay (Manku, Bawa, Raghavan; USITS 2003).

Peers take uniform-hash identifiers on the unit ring. Each peer draws its
``k`` long links from the *harmonic* distribution: a link distance ``d``
is sampled with density ``p(d) = 1 / (d ln N)`` on ``[1/N, 1]``, which is
what gives Symphony its ``O(log^2 N / k)`` routing. We retain Symphony's
lookahead optimization (the paper's SELECT borrows exactly this ``L_p``
mechanism from Symphony).

Construction is non-iterative: links are drawn once from the ids, so the
system is excluded from the Figure 5 iteration comparison — matching the
paper, which omits Symphony and Bayeux there.

The pub/sub layer over Symphony is oblivious unicast: a notification is
routed through the DHT to each subscriber independently, so nearly every
hop lands on a peer that never subscribed — the relay-node problem that
motivates SELECT.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.idspace.hashing import uniform_hashes
from repro.overlay.base import OverlayNetwork
from repro.overlay.ring import ring_links, successor_of
from repro.util.rng import as_generator

__all__ = ["SymphonyOverlay"]


class SymphonyOverlay(OverlayNetwork):
    """Small-world ring DHT with harmonic long links."""

    name = "Symphony"
    iterative = False
    default_lookahead = True

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        super().__init__(graph, k_links)

    def build(self, seed=None) -> "SymphonyOverlay":
        """Assign uniform ids and draw harmonic long links."""
        rng = as_generator(seed)
        n = self.graph.num_nodes
        salt = int(rng.integers(2**31 - 1))
        self.ids = uniform_hashes(range(n), salt=salt)
        for v, (pred, succ) in enumerate(ring_links(self.ids)):
            self.tables[v].predecessor = pred
            self.tables[v].successor = succ
        self._draw_long_links(rng)
        self.iterations = 0
        self._mark_built()
        return self

    def _draw_long_links(self, rng: np.random.Generator) -> None:
        """Sample each peer's k long links from the harmonic pdf."""
        n = self.graph.num_nodes
        ln_n = np.log(max(n, 2))
        for v in range(n):
            table = self.tables[v]
            attempts = 0
            while len(table.long_links) < self.k_links and attempts < self.k_links * 8:
                attempts += 1
                # Inverse-CDF sampling of p(d) ∝ 1/(d ln N) on [1/N, 1]:
                # d = exp(ln N * (u - 1)) = N^(u-1), u ~ U[0, 1].
                distance = float(np.exp(ln_n * (rng.random() - 1.0)))
                target_point = (self.ids[v] + distance) % 1.0
                manager = successor_of(self.ids, target_point)
                if manager == v or manager in table.long_links:
                    continue
                if self.try_accept_incoming(manager):
                    table.long_links.add(manager)

    def disseminate(self, publisher, subscribers, router, online=None) -> dict:
        """Pub/sub over Symphony: independent DHT unicast to each subscriber."""
        return super().disseminate(publisher, subscribers, router, online=online)
