"""Divide-and-conquer topic-connected overlay construction (Chen,
Jacobsen, Vitenberg; ToN 2014) — the algorithm OMen builds on.

Exact Greedy Merge re-scores every candidate edge per iteration, which is
quadratic-ish in the co-subscription pairs and unusable beyond toy sizes.
The divide-and-conquer approximation processes topics independently
(smallest first, so cheap topics are satisfied before degree budget runs
out) and, within a topic, connects the subscriber components with edges
chosen to keep degrees low — reusing edges contributed by earlier topics
for free.
"""

from __future__ import annotations

from collections import defaultdict

from repro.baselines.greedy_merge import _UnionFind

__all__ = ["build_tco"]


def build_tco(topics: dict, max_degree: "int | None" = None) -> set:
    """Edges of an (approximately minimal) topic-connected overlay.

    ``topics`` maps topic id -> iterable of member nodes; members of each
    topic end up connected among themselves wherever the degree budget
    allows. Returns edges as ``(u, v)`` tuples with ``u < v``.
    """
    degree: dict[int, int] = defaultdict(int)
    chosen: set[tuple[int, int]] = set()
    adjacency: dict[int, set[int]] = defaultdict(set)

    def can_link(u: int, v: int) -> bool:
        if max_degree is None:
            return True
        return degree[u] < max_degree and degree[v] < max_degree

    def add_edge(u: int, v: int) -> None:
        edge = (min(u, v), max(u, v))
        if edge in chosen:
            return
        chosen.add(edge)
        degree[u] += 1
        degree[v] += 1
        adjacency[u].add(v)
        adjacency[v].add(u)

    # Smallest topics first: they have the fewest reuse opportunities and
    # starving them under a degree cap would leave many tiny disconnected
    # topics (the expensive failure mode).
    for t in sorted(topics, key=lambda t: (len(list(topics[t])), t)):
        members = sorted(set(topics[t]))
        if len(members) < 2:
            continue
        uf = _UnionFind(members)
        member_set = set(members)
        # Reuse edges already chosen by earlier topics.
        for u in members:
            for v in adjacency[u]:
                if v in member_set:
                    uf.union(u, v)
        # Component representatives, cheapest (lowest-degree) node first.
        comps: dict[int, list[int]] = defaultdict(list)
        for m in members:
            comps[uf.find(m)].append(m)
        if len(comps) <= 1:
            continue
        # Merge components into one, always attaching through the
        # lowest-degree nodes available; components whose every member is
        # at the cap stay disconnected (the churn/fallback path covers it).
        comp_lists = sorted(
            comps.values(), key=lambda nodes: min((degree[v], v) for v in nodes)
        )
        anchored = list(comp_lists[0])
        for nodes in comp_lists[1:]:
            other = min(nodes, key=lambda v: (degree[v], v))
            candidate = min(
                (m for m in anchored if can_link(m, other)),
                default=None,
                key=lambda v: (degree[v], v),
            )
            if candidate is None:
                # ``other`` may itself be capped; search any linkable pair.
                pair = next(
                    (
                        (m, w)
                        for m in sorted(anchored, key=lambda v: (degree[v], v))
                        for w in sorted(nodes, key=lambda v: (degree[v], v))
                        if can_link(m, w)
                    ),
                    None,
                )
                if pair is None:
                    continue
                add_edge(*pair)
            else:
                add_edge(candidate, other)
            anchored.extend(nodes)
    return chosen
