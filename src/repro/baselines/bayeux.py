"""Bayeux overlay (Zhuang et al.; NOSSDAV 2001).

Bayeux builds per-topic dissemination trees over Tapestry, a
prefix-routing DHT: a topic's *rendezvous root* is the node whose
identifier is closest to the topic hash, subscribers send JOIN messages
that are routed to the root, and the union of those join paths is the
topic's spanning tree. A publish travels publisher → root → down the tree.

We emulate Tapestry's suffix/prefix routing structure on the unit ring
with deterministic geometric fingers: peer ``v`` links to the managers of
the points ``id_v + 2^-i``. Resolving one digit per hop in base-2 prefix
routing is exactly halving the remaining ring distance, so the emulation
preserves Tapestry's O(log N) path lengths and its obliviousness to the
social graph — the properties the paper's comparison exercises. No
lookahead (Tapestry routes by identifier only).
"""

from __future__ import annotations

from repro.graphs.graph import SocialGraph
from repro.idspace.hashing import uniform_hash, uniform_hashes
from repro.overlay.base import OverlayNetwork
from repro.overlay.ring import ring_links, successor_of
from repro.overlay.routing import RouteResult
from repro.util.rng import as_generator

__all__ = ["BayeuxOverlay"]


class BayeuxOverlay(OverlayNetwork):
    """Prefix-routing DHT with per-topic rendezvous trees."""

    name = "Bayeux"
    iterative = False
    default_lookahead = False

    def __init__(self, graph: SocialGraph, k_links: int | None = None):
        super().__init__(graph, k_links)
        self._topic_salt = 0

    def build(self, seed=None) -> "BayeuxOverlay":
        """Assign uniform ids and deterministic prefix-routing fingers."""
        rng = as_generator(seed)
        n = self.graph.num_nodes
        salt = int(rng.integers(2**31 - 1))
        self._topic_salt = int(rng.integers(2**31 - 1))
        self.ids = uniform_hashes(range(n), salt=salt)
        for v, (pred, succ) in enumerate(ring_links(self.ids)):
            self.tables[v].predecessor = pred
            self.tables[v].successor = succ
        self._build_fingers()
        self.iterations = 0
        self._mark_built()
        return self

    def _build_fingers(self) -> None:
        """Geometric finger table: one link per resolved routing digit."""
        n = self.graph.num_nodes
        for v in range(n):
            table = self.tables[v]
            for i in range(1, self.k_links + 1):
                point = (self.ids[v] + 2.0**-i) % 1.0
                manager = successor_of(self.ids, point)
                if manager != v:
                    # Tapestry neighbor tables are not degree-capped per
                    # incoming side; charge the slot best-effort only.
                    self.try_accept_incoming(manager)
                    table.long_links.add(manager)

    # -- rendezvous machinery -------------------------------------------------

    def rendezvous_root(self, topic: int) -> int:
        """Node managing the topic hash (the tree root for ``topic``)."""
        self._check_built()
        return successor_of(self.ids, uniform_hash(int(topic), salt=self._topic_salt))

    def disseminate(self, publisher, subscribers, router, online=None) -> dict:
        """Publisher → rendezvous root → down the subscriber join paths.

        A subscriber's delivery path is the publisher-to-root route
        followed by the reverse of the subscriber's JOIN route (join
        messages travel subscriber → root; data flows back down the same
        edges).
        """
        root = self.rendezvous_root(publisher)
        up = router.route(publisher, root, online=online)
        results: dict[int, RouteResult] = {}
        for s in subscribers:
            if not up.delivered:
                results[s] = RouteResult(path=list(up.path), delivered=False)
                continue
            join = router.route(s, root, online=online)
            if not join.delivered:
                results[s] = RouteResult(path=list(up.path), delivered=False)
                continue
            down = list(reversed(join.path))  # root -> subscriber
            full = list(up.path) + down[1:]
            results[s] = RouteResult(path=full, delivered=True)
        return results
