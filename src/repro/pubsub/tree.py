"""Dissemination (routing) tree ``RT_b`` for one publisher.

Built by merging the overlay routing paths from the publisher to each
subscriber. The first path to reach a node becomes its tree parent
(message deduplication: a peer forwards each message once); later paths
reuse the existing copy from that node onward.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["RoutingTree"]


class RoutingTree:
    """Rooted dissemination tree over overlay node ids."""

    def __init__(self, root: int):
        self.root = root
        self.parent: dict[int, int] = {}
        self.children: dict[int, list[int]] = defaultdict(list)
        self._nodes: set[int] = {root}

    # -- construction -------------------------------------------------------

    def add_path(self, path) -> None:
        """Merge one routing path (must start at the root)."""
        nodes = list(path)
        if not nodes:
            return
        if nodes[0] != self.root:
            raise ValueError(f"path starts at {nodes[0]}, tree root is {self.root}")
        for i in range(len(nodes) - 1):
            a, b = nodes[i], nodes[i + 1]
            if b in self._nodes:
                continue  # message already reaches b through the tree
            self.parent[b] = a
            self.children[a].append(b)
            self._nodes.add(b)

    # -- queries --------------------------------------------------------------

    @property
    def nodes(self) -> set[int]:
        """All nodes the message visits (root included)."""
        return set(self._nodes)

    def edges(self) -> list[tuple[int, int]]:
        """Tree edges as ``(parent, child)`` pairs."""
        return [(p, c) for c, p in self.parent.items()]

    def forwarders(self) -> dict[int, int]:
        """Per-node forward counts (number of children each node pushes to)."""
        return {node: len(kids) for node, kids in self.children.items() if kids}

    def relay_nodes(self, subscribers) -> set[int]:
        """Interior nodes that are neither the publisher nor subscribed.

        These are the relays the paper's problem statement minimizes:
        ``S_b^¬ = {s | f(s, b) = false}`` appearing on the routing tree.
        """
        subs = set(subscribers)
        return {v for v in self._nodes if v != self.root and v not in subs}

    def depth_of(self, node: int) -> int:
        """Hop depth of ``node`` below the root."""
        depth = 0
        cur = node
        while cur != self.root:
            cur = self.parent[cur]
            depth += 1
            if depth > len(self._nodes):
                raise RuntimeError("cycle detected in routing tree")
        return depth

    def children_map(self) -> dict[int, list[int]]:
        """Plain dict copy of the children adjacency (for transfer models)."""
        return {k: list(v) for k, v in self.children.items()}

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)
