"""Topic-less social pub/sub on top of an overlay.

In the paper's model (Section II-B) every social user is implicitly a
topic: a publisher ``b``'s subscribers are its interested social friends
``S_b``. :class:`PubSubSystem` runs that model over any
:class:`~repro.overlay.base.OverlayNetwork` — publish events route to each
subscriber, merged into a dissemination tree whose interior non-subscriber
nodes are the *relay nodes* the paper sets out to minimize.
"""

from repro.pubsub.tree import RoutingTree
from repro.pubsub.api import DisseminationResult, PubSubSystem
from repro.pubsub.topics import (
    TopicDissemination,
    TopicPubSub,
    zipf_topic_subscriptions,
)

__all__ = [
    "RoutingTree",
    "DisseminationResult",
    "PubSubSystem",
    "TopicDissemination",
    "TopicPubSub",
    "zipf_topic_subscriptions",
]
