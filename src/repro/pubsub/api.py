"""Public pub/sub API.

:class:`PubSubSystem` binds an overlay to the paper's social pub/sub
semantics: subscribers of a publisher are its interested social friends
(the interest function defaults to "every friend is interested"); a
publish event routes the notification to all of them and reports the
dissemination tree, per-path hop counts, relay nodes, and delivery status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.net.faults import FaultPlan
from repro.overlay.base import OverlayNetwork
from repro.overlay.routing import RouteResult
from repro.pubsub.tree import RoutingTree
from repro.telemetry.registry import HOP_BUCKETS, get_registry
from repro.telemetry.tracer import get_tracer
from repro.util.exceptions import ConfigurationError

__all__ = ["DisseminationResult", "PubSubSystem"]

InterestFn = Callable[[int, int], bool]


@dataclass
class DisseminationResult:
    """Outcome of one publish event."""

    publisher: int
    subscribers: list[int]
    tree: RoutingTree
    routes: dict[int, RouteResult]
    #: retransmissions spent on lossy links during this publish.
    retries: int = 0
    #: subscribers lost to link faults (retry budget exhausted / partition).
    dropped: int = 0
    #: missed subscribers whose notification was parked in a catch-up
    #: buffer for later anti-entropy delivery (0 without a store).
    buffered: int = 0
    #: subscribers shed by overload protection (saturated relay after the
    #: retry budget); shed routes degrade to the catch-up path.
    shed: int = 0

    @property
    def delivered(self) -> list[int]:
        """Subscribers the message reached."""
        return [s for s, r in self.routes.items() if r.delivered]

    @property
    def failed(self) -> list[int]:
        """Subscribers the message could not reach."""
        return [s for s, r in self.routes.items() if not r.delivered]

    @property
    def delivery_ratio(self) -> float:
        """Fraction of subscribers reached (1.0 when there are none)."""
        if not self.subscribers:
            return 1.0
        return len(self.delivered) / len(self.subscribers)

    @property
    def relay_nodes(self) -> set[int]:
        """Relay nodes of the merged dissemination tree."""
        return self.tree.relay_nodes(self.subscribers)

    @property
    def per_path_hops(self) -> list[int]:
        """Hop count of each delivered publisher->subscriber path."""
        return [r.hops for r in self.routes.values() if r.delivered]

    def per_path_relays(self) -> list[int]:
        """Relay count of each delivered path (Fig. 3's per-path metric)."""
        subs = set(self.subscribers)
        subs.add(self.publisher)
        out = []
        for r in self.routes.values():
            if not r.delivered:
                continue
            out.append(sum(1 for v in r.path[1:-1] if v not in subs))
        return out


class PubSubSystem:
    """Social pub/sub service over a built overlay."""

    def __init__(
        self,
        overlay: OverlayNetwork,
        interest: "InterestFn | None" = None,
        lookahead: "bool | None" = None,
        faults: "FaultPlan | None" = None,
        catchup=None,
        overload=None,
        registry=None,
        tracer=None,
    ):
        self.overlay = overlay
        self.graph = overlay.graph
        self.interest = interest
        self.router = overlay.make_router(lookahead=lookahead)
        self.faults = faults
        #: optional :class:`~repro.scenarios.overload.OverloadGuard`; when
        #: set, every publish's dissemination tree is admitted against the
        #: per-peer queue model before link faults are replayed.
        self.overload = overload
        #: optional :class:`~repro.core.stabilize.CatchUpStore`; when set,
        #: missed subscribers get their notification buffered for later
        #: anti-entropy delivery instead of being dropped outright.
        self.catchup = catchup
        #: metrics registry (process-wide current unless injected); the
        #: default NullRegistry makes every update below a no-op.
        self.registry = registry if registry is not None else get_registry()
        #: optional route tracer; per-hop decision recording on the router
        #: is only switched on when a tracer is actually listening.
        self.tracer = tracer if tracer is not None else get_tracer()
        if self.tracer is not None and hasattr(self.router, "record_decisions"):
            self.router.record_decisions = True
        self._publishes = self.registry.counter(
            "publish.events", "publish events disseminated"
        )
        self._delivered = self.registry.counter(
            "publish.delivered", "subscriber deliveries that succeeded"
        )
        self._dropped = self.registry.counter(
            "publish.dropped", "subscriber deliveries lost to link faults"
        )
        self._buffered = self.registry.counter(
            "publish.buffered", "missed notifications parked for catch-up"
        )
        self._shed = self.registry.counter(
            "publish.shed", "subscriber deliveries shed by overload protection"
        )
        self._retries = self.registry.counter(
            "publish.retries", "retransmissions spent on lossy links"
        )
        self._hops = self.registry.histogram(
            "publish.hops", HOP_BUCKETS, "per-path hop counts of delivered routes"
        )
        self._fanout = self.registry.histogram(
            "publish.fanout", help="subscribers per publish event"
        )

    def subscribers_of(self, publisher: int) -> list[int]:
        """``S_b``: the publisher's interested social friends."""
        friends = self.graph.neighbors(publisher)
        if self.interest is None:
            return [int(f) for f in friends]
        return [int(f) for f in friends if self.interest(int(f), publisher)]

    def publish(
        self,
        publisher: int,
        online: "np.ndarray | None" = None,
        time: float = 0.0,
    ) -> DisseminationResult:
        """Disseminate one notification from ``publisher`` to ``S_b``.

        ``time`` only matters under an active fault plan, where it decides
        which injected partitions are in effect.
        """
        if not (0 <= publisher < self.graph.num_nodes):
            raise ConfigurationError(f"publisher {publisher} out of range")
        interested = self.subscribers_of(publisher)
        subscribers = interested
        if online is not None:
            subscribers = [s for s in interested if online[s]]
        tree = RoutingTree(publisher)
        # Each overlay defines its own dissemination shape (unicast DHT,
        # rendezvous tree, topic-connected overlay, ...).
        routes: dict[int, RouteResult] = self.overlay.disseminate(
            publisher, subscribers, self.router, online=online
        )
        retries = 0
        dropped = 0
        shed = 0
        if self.overload is not None:
            # Admission happens at send time, before the network can lose
            # anything: a route that is never admitted is never transmitted.
            routes, overflowed, shed = self.overload.admit(routes, time)
            dropped += overflowed
        fault_notes: "dict[int, dict] | None" = {} if self.tracer is not None else None
        if self.faults is not None and not self.faults.is_null:
            routes, fault_retries, fault_dropped = self._inject_link_faults(
                routes, time, fault_notes
            )
            retries += fault_retries
            dropped += fault_dropped
        buffered = 0
        if self.catchup is not None:
            buffered = self._deposit_missed(
                publisher, interested, subscribers, routes, online, time
            )
        # Merge paths near-first so farther paths reuse tree prefixes
        # (message deduplication).
        for s in sorted(routes, key=lambda s: (len(routes[s].path), s)):
            result = routes[s]
            if result.delivered:
                tree.add_path(result.path)
        out = DisseminationResult(
            publisher=publisher,
            subscribers=subscribers,
            tree=tree,
            routes=routes,
            retries=retries,
            dropped=dropped,
            buffered=buffered,
            shed=shed,
        )
        self._observe_publish(out)
        if self.tracer is not None:
            self._trace_publish(out, time, fault_notes or {})
        return out

    # -- telemetry -----------------------------------------------------------

    def _observe_publish(self, result: DisseminationResult) -> None:
        """Fold one publish outcome into the metrics registry (no-op by default)."""
        self._publishes.inc()
        self._fanout.observe(len(result.subscribers))
        self._retries.inc(result.retries)
        self._dropped.inc(result.dropped)
        self._buffered.inc(result.buffered)
        self._shed.inc(result.shed)
        for r in result.routes.values():
            if r.delivered:
                self._delivered.inc()
                self._hops.observe(r.hops)

    def _trace_publish(
        self, result: DisseminationResult, time: float, fault_notes: dict
    ) -> None:
        """Emit one publish span: every route with its hop decisions."""
        route_rows = []
        for s in sorted(result.routes):
            r = result.routes[s]
            row: dict = {
                "subscriber": int(s),
                "delivered": bool(r.delivered),
                "hops": r.hops,
                "path": [int(v) for v in r.path],
            }
            if r.decisions:
                row["hops_detail"] = [d.as_dict() for d in r.decisions]
            note = fault_notes.get(s)
            if note is not None:
                row["fault"] = note
            route_rows.append(row)
        self.tracer.record(
            {
                "type": "publish",
                "msg": self.tracer.next_message_id(),
                "time": float(time),
                "publisher": int(result.publisher),
                "subscribers": [int(s) for s in result.subscribers],
                "delivered": len(result.delivered),
                "dropped": result.dropped,
                "buffered": result.buffered,
                "shed": result.shed,
                "retries": result.retries,
                "routes": route_rows,
            }
        )

    def _deposit_missed(
        self, publisher, interested, subscribers, routes, online, time
    ) -> int:
        """Park every missed notification in the catch-up store.

        Two classes of miss: an *online* subscriber the dissemination
        failed to reach (counts against availability — ``counted=True``)
        and an interested friend that was simply offline at publish time
        (the availability metric never counted it; catch-up still delivers
        it once the friend returns — ``counted=False``).
        """
        seq = self.catchup.new_notification()
        buffered = 0
        for s in subscribers:
            if not routes[s].delivered:
                self.catchup.deposit(seq, publisher, s, True, online, time)
                buffered += 1
        if online is not None:
            reached = set(subscribers)
            for s in interested:
                if s not in reached:
                    self.catchup.deposit(seq, publisher, s, False, online, time)
                    buffered += 1
        return buffered

    def _inject_link_faults(
        self,
        routes: dict[int, RouteResult],
        time: float,
        fault_notes: "dict[int, dict] | None" = None,
    ) -> "tuple[dict[int, RouteResult], int, int]":
        """Replay each routed path over the lossy links of the fault plan.

        A shared edge cache ensures hops common to several paths (the
        dissemination tree's shared prefixes) are transmitted — and can be
        lost — exactly once per publish event. When ``fault_notes`` is
        given (route tracing), each dropped subscriber gets an annotation
        recording where its path died and why.
        """
        edge_cache: dict = {}
        out: dict[int, RouteResult] = {}
        retries = 0
        dropped = 0
        for s, result in routes.items():
            if not result.delivered:
                out[s] = result
                continue
            outcome = self.faults.transmit_path(
                result.path, ids=self.overlay.ids, time=time, edge_cache=edge_cache
            )
            retries += outcome.retries
            if outcome.delivered:
                out[s] = result
            else:
                dropped += 1
                decisions = result.decisions
                if decisions is not None:
                    # Keep only the decisions for hops actually taken.
                    decisions = decisions[: max(0, outcome.lost_at - 1)]
                out[s] = RouteResult(
                    path=result.path[: outcome.lost_at],
                    delivered=False,
                    decisions=decisions,
                )
                if fault_notes is not None:
                    fault_notes[s] = {
                        "lost_at": outcome.lost_at,
                        "partition": outcome.partition_blocked,
                        "retries": outcome.retries,
                    }
        return out, retries, dropped

    def lookup(self, src: int, dst: int, online: "np.ndarray | None" = None) -> RouteResult:
        """Point-to-point social lookup (Fig. 2's metric)."""
        result = self.router.route(src, dst, online=online)
        self.registry.counter("lookup.events", "point-to-point social lookups").inc()
        if result.delivered:
            self.registry.histogram(
                "lookup.hops", HOP_BUCKETS, "hop counts of delivered lookups"
            ).observe(result.hops)
        if self.tracer is not None:
            span = {
                "type": "lookup",
                "msg": self.tracer.next_message_id(),
                "src": int(src),
                "dst": int(dst),
                "delivered": bool(result.delivered),
                "hops": result.hops,
                "path": [int(v) for v in result.path],
            }
            if result.decisions:
                span["hops_detail"] = [d.as_dict() for d in result.decisions]
            self.tracer.record(span)
        return result
