"""Topic-based pub/sub extension (groups and pages).

The paper's core model makes every *user* a topic (subscribers = friends),
but its introduction also motivates "preferable sources (e.g. groups,
pages)" and the related work is all topic-based pub/sub (SpiderCast,
PolderCast, OMen). This module adds explicit topics on top of any
overlay:

* :func:`zipf_topic_subscriptions` — a synthetic group workload: topic
  popularity is Zipf-distributed, and each topic's audience is biased
  toward one social community (real groups are socially clustered).
* :class:`TopicPubSub` — publishes to a topic's subscribers over the
  overlay, whoever they are, with the same routing-tree/relay accounting
  as the social layer.

For SELECT this probes the boundary of the design: community-biased
topics still profit from the social embedding (subscribers share an ID
region), while globally scattered topics degrade toward plain DHT routing
— a limitation worth measuring, not hiding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import SocialGraph
from repro.overlay.base import OverlayNetwork
from repro.overlay.routing import RouteResult
from repro.pubsub.tree import RoutingTree
from repro.util.exceptions import ConfigurationError
from repro.util.rng import as_generator

__all__ = ["TopicDissemination", "TopicPubSub", "zipf_topic_subscriptions"]


def zipf_topic_subscriptions(
    graph: SocialGraph,
    num_topics: int,
    mean_subscriptions: float = 3.0,
    zipf_exponent: float = 1.2,
    community_bias: float = 0.7,
    seed=None,
) -> dict[int, set[int]]:
    """Generate a group/page subscription workload.

    Topic popularity follows a Zipf law; with probability
    ``community_bias`` a subscriber is drawn from the topic's home
    community (a BFS ball around a seed user), otherwise uniformly.
    Returns ``{topic_id: subscriber set}``.
    """
    if num_topics < 1:
        raise ConfigurationError(f"need at least one topic, got {num_topics}")
    if mean_subscriptions <= 0:
        raise ConfigurationError(f"mean_subscriptions must be positive, got {mean_subscriptions}")
    if not (0.0 <= community_bias <= 1.0):
        raise ConfigurationError(f"community_bias must be in [0, 1], got {community_bias}")
    rng = as_generator(seed)
    n = graph.num_nodes
    # Zipf popularity, normalized to the requested total subscription mass.
    ranks = np.arange(1, num_topics + 1, dtype=np.float64)
    popularity = ranks**-zipf_exponent
    popularity *= (mean_subscriptions * n) / popularity.sum()
    out: dict[int, set[int]] = {}
    for topic in range(num_topics):
        want = max(2, int(round(popularity[topic])))
        want = min(want, n)
        home = _community_ball(graph, int(rng.integers(n)), want, rng)
        members: set[int] = set()
        while len(members) < want:
            if home and rng.random() < community_bias:
                members.add(int(home[rng.integers(len(home))]))
            else:
                members.add(int(rng.integers(n)))
        out[topic] = members
    return out


def _community_ball(graph: SocialGraph, seed_user: int, size: int, rng) -> list[int]:
    """BFS ball of about ``2 * size`` users around ``seed_user``."""
    target = max(size * 2, 8)
    ball = [seed_user]
    seen = {seed_user}
    idx = 0
    while idx < len(ball) and len(ball) < target:
        for v in graph.neighbors(ball[idx]):
            v = int(v)
            if v not in seen:
                seen.add(v)
                ball.append(v)
                if len(ball) >= target:
                    break
        idx += 1
    return ball


@dataclass
class TopicDissemination:
    """Outcome of one topic publish."""

    topic: int
    publisher: int
    subscribers: list[int]
    tree: RoutingTree
    routes: dict[int, RouteResult]

    @property
    def delivery_ratio(self) -> float:
        if not self.subscribers:
            return 1.0
        return sum(1 for r in self.routes.values() if r.delivered) / len(self.subscribers)

    @property
    def relay_nodes(self) -> set[int]:
        return self.tree.relay_nodes(self.subscribers)

    def per_path_hops(self) -> list[int]:
        return [r.hops for r in self.routes.values() if r.delivered]


class TopicPubSub:
    """Topic-based pub/sub over any built overlay."""

    def __init__(self, overlay: OverlayNetwork, subscriptions: dict[int, set[int]]):
        if not subscriptions:
            raise ConfigurationError("at least one topic is required")
        self.overlay = overlay
        self.subscriptions = {t: set(m) for t, m in subscriptions.items()}
        self.router = overlay.make_router()

    def topics(self) -> list[int]:
        """All topic ids, sorted."""
        return sorted(self.subscriptions)

    def topics_of(self, user: int) -> list[int]:
        """Topics a user subscribes to."""
        return sorted(t for t, members in self.subscriptions.items() if user in members)

    def publish(self, topic: int, publisher: "int | None" = None, online=None) -> TopicDissemination:
        """Disseminate one message on ``topic``.

        ``publisher`` defaults to the lowest-id subscriber (the "group
        owner"); it may also be any non-member (pages push to followers).
        """
        if topic not in self.subscriptions:
            raise ConfigurationError(f"unknown topic {topic}")
        members = self.subscriptions[topic]
        if publisher is None:
            publisher = min(members)
        subscribers = sorted(m for m in members if m != publisher)
        if online is not None:
            subscribers = [s for s in subscribers if online[s]]
        routes = self.overlay.disseminate(publisher, subscribers, self.router, online=online)
        tree = RoutingTree(publisher)
        for s in sorted(routes, key=lambda s: (len(routes[s].path), s)):
            if routes[s].delivered:
                tree.add_path(routes[s].path)
        return TopicDissemination(
            topic=topic,
            publisher=publisher,
            subscribers=subscribers,
            tree=tree,
            routes=routes,
        )
