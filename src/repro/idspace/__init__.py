"""The unit-interval ring identifier space shared by every overlay.

Peers are positioned on the circular ID space ``I = [0, 1)``; the ring
distance between two identifiers is the shorter arc between them. SELECT's
contribution is that peer identifiers are *mutable*: the projection and
reassignment algorithms move socially close peers into the same ID region.
"""

from repro.idspace.space import (
    IdSpace,
    normalize,
    ring_distance,
    ring_distances,
    ring_interval_contains,
    ring_midpoint,
    signed_ring_delta,
)
from repro.idspace.hashing import stable_digest, uniform_hash, uniform_hashes

__all__ = [
    "IdSpace",
    "normalize",
    "ring_distance",
    "ring_distances",
    "ring_interval_contains",
    "ring_midpoint",
    "signed_ring_delta",
    "stable_digest",
    "uniform_hash",
    "uniform_hashes",
]
