"""Uniform hashing of user keys onto the identifier space.

The paper assigns initial identifiers with SHA-1 (the classic DHT choice).
We keep SHA-1 for fidelity — it is used purely as a uniform mapping, not
for security — and fold the 160-bit digest down to a float64 in ``[0, 1)``.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["stable_digest", "uniform_hash", "uniform_hashes"]

_SCALE = float(2**64)


def stable_digest(key: "int | str | bytes", salt: int = 0) -> bytes:
    """SHA-1 digest of ``key`` (process-independent, unlike ``hash()``)."""
    if isinstance(key, bytes):
        payload = key
    elif isinstance(key, str):
        payload = key.encode("utf-8")
    elif isinstance(key, (int, np.integer)):
        payload = int(key).to_bytes(16, "little", signed=True)
    else:
        raise TypeError(f"unhashable key type for stable_digest: {type(key)!r}")
    if salt:
        payload = salt.to_bytes(8, "little") + payload
    return hashlib.sha1(payload).digest()


def uniform_hash(key: "int | str | bytes", salt: int = 0) -> float:
    """Map ``key`` uniformly onto ``[0, 1)`` (Algorithm 1's uniformHash)."""
    digest = stable_digest(key, salt)
    value = int.from_bytes(digest[:8], "little")
    return value / _SCALE


def uniform_hashes(keys, salt: int = 0) -> np.ndarray:
    """Vector of :func:`uniform_hash` values for an iterable of keys."""
    return np.array([uniform_hash(k, salt) for k in keys], dtype=np.float64)
