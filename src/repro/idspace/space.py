"""Ring arithmetic on the unit-interval identifier space ``[0, 1)``.

All functions accept scalars or numpy arrays and broadcast; hot callers
(routing, reassignment) pass whole arrays at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "normalize",
    "ring_distance",
    "ring_distances",
    "signed_ring_delta",
    "ring_midpoint",
    "ring_interval_contains",
    "IdSpace",
]


def normalize(x):
    """Map any real value onto ``[0, 1)`` by wrapping around the ring.

    ``np.mod(x, 1.0)`` rounds to exactly 1.0 for tiny negative inputs
    (1 - eps is not representable near 1.0), which would put an identifier
    *outside* the ring; that case folds back to 0.0.
    """
    out = np.mod(x, 1.0)
    out = np.where(out >= 1.0, 0.0, out)
    return float(out) if np.isscalar(x) or np.ndim(x) == 0 else out


def ring_distance(a, b):
    """Shorter-arc distance between identifiers ``a`` and ``b``.

    ``d(a, b) = min(|a - b|, 1 - |a - b|)``; symmetric, bounded by 0.5.
    """
    if type(a) is float and type(b) is float:
        # Scalar fast path: this sits on the reassignment/routing hot loop
        # and the numpy ufunc machinery costs 10x the arithmetic here.
        diff = abs(a - b) % 1.0
        return diff if diff <= 0.5 else 1.0 - diff
    diff = np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))
    diff = np.mod(diff, 1.0)
    out = np.minimum(diff, 1.0 - diff)
    return float(out) if np.isscalar(a) and np.isscalar(b) else out


def ring_distances(ids: np.ndarray, target: float) -> np.ndarray:
    """Vectorized ring distance from every entry of ``ids`` to ``target``."""
    diff = np.abs(ids - target)
    return np.minimum(diff, 1.0 - diff)


def signed_ring_delta(a, b):
    """Signed shortest displacement from ``a`` to ``b`` in ``(-0.5, 0.5]``.

    ``normalize(a + signed_ring_delta(a, b)) == b`` along the shorter arc.
    """
    delta = np.mod(np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64), 1.0)
    out = np.where(delta > 0.5, delta - 1.0, delta)
    return float(out) if np.isscalar(a) and np.isscalar(b) else out


def ring_midpoint(a, b):
    """Midpoint of the *shorter* arc between ``a`` and ``b``.

    This is the "centroid" used by SELECT's identifier reassignment
    (Algorithm 2): a peer relocates between its two strongest friends.
    """
    return normalize(np.asarray(a, dtype=np.float64) + 0.5 * signed_ring_delta(a, b))


def ring_interval_contains(start: float, end: float, x: float) -> bool:
    """True when ``x`` lies on the clockwise arc from ``start`` to ``end``.

    The arc is half-open: ``start`` excluded, ``end`` included, matching the
    successor-responsibility convention of ring DHTs.
    """
    start = float(normalize(start))
    end = float(normalize(end))
    x = float(normalize(x))
    if start == end:
        # Degenerate interval covers the whole ring.
        return True
    if start < end:
        return start < x <= end
    return x > start or x <= end


@dataclass(frozen=True)
class IdSpace:
    """The shared identifier space, with a seeded assignment helper.

    ``resolution`` bounds how close two distinct peers may sit; the default
    (2**-53) is effectively continuous while keeping midpoint computations
    exact in float64.
    """

    resolution: float = 2.0**-53

    def distance(self, a, b):
        """Ring distance (see :func:`ring_distance`)."""
        return ring_distance(a, b)

    def midpoint(self, a, b):
        """Shorter-arc midpoint (see :func:`ring_midpoint`)."""
        return ring_midpoint(a, b)

    def adjacent_id(self, anchor: float, rng: np.random.Generator, spread: float = 1e-6) -> float:
        """An identifier immediately next to ``anchor``.

        Used by the projection step (Algorithm 1) to place an invited user's
        peer at minimal distance from the inviter without colliding.
        """
        if spread <= 0:
            raise ValueError(f"spread must be positive, got {spread}")
        offset = float(rng.uniform(self.resolution, spread))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        return float(normalize(anchor + sign * offset))

    def sort_ring(self, ids: np.ndarray) -> np.ndarray:
        """Indices that order peers clockwise around the ring."""
        return np.argsort(ids, kind="stable")
