"""Typed barrier frames for the sharded construction protocol.

One frame kind per protocol step, pickled to bytes by the sender so the
parent can meter boundary traffic exactly (``shard.boundary_bytes`` is
the sum of encoded frame lengths). Frames are **seed-deterministic**:
every field is a pure function of the build seed and the round number —
plans are emitted in vertex order, per-peer payloads keep their live
dict order (the persist determinism contract), and numpy arrays pickle
their exact bytes — so two runs of the same seed produce byte-identical
frame streams at any worker count (pinned by ``tests/test_shard.py``
via the engine's running frame digest). The one exception is
:attr:`ArcFrame.peak_rss_kb`, a runtime measurement; arc frames are
therefore metered but excluded from the digest.

Protocol per round (worker view):

1. send :class:`PlanFrame` — Alg. 5–6 net-diff plans for owned vertices
   plus the owned slice of Alg. 2's proposed identifiers.
2. recv :class:`BarrierFrame` — the merged, vertex-ordered plan log, the
   deduplicated identifier delta, the stop flag, and (optionally) a
   checkpoint directive naming the parent snapshot id to write arcs for.
3. (on checkpoint) send :class:`CheckpointAck` after the arc
   sub-snapshots are durably on disk — the parent writes ``build.json``
   only after every ack, so a complete generation always has the parent
   record last.
4. (on stop) send :class:`ArcFrame` — the final heavy gossip state of
   every owned vertex, handed back to the parent replica.

Partner draws and the Alg. 3–4 exchange quantities cross **no** frame:
they are deterministic functions of replicated light state, so every
replica derives them locally (see DESIGN.md, sharded determinism
contract).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "PlanFrame",
    "BarrierFrame",
    "CheckpointAck",
    "ArcFrame",
    "encode",
    "decode",
]


@dataclass
class PlanFrame:
    """Worker -> parent at the end of a round's compute phase."""

    kind = "plan"
    round_no: int
    worker: int
    #: ``(vertex, drops, adds)`` net link diffs, vertex-ascending; drops
    #: and adds are sorted tuples.
    plans: list
    #: Alg. 2 proposals for the worker's owned vertices (plan order).
    pending: np.ndarray


@dataclass
class BarrierFrame:
    """Parent -> every worker: the round's globally agreed outcome."""

    kind = "barrier"
    round_no: int
    #: all workers' plans merged, sorted by vertex — the application order.
    plans: list
    #: identifiers that changed after dedup (indices + exact new values).
    changed_idx: np.ndarray
    changed_vals: np.ndarray
    #: construction is over after this barrier (converged or max_rounds).
    stop: bool
    #: ``(generation_dir, parent_snapshot_id)`` when this barrier
    #: checkpoints, else None.
    checkpoint: "tuple[str, str] | None" = None


@dataclass
class CheckpointAck:
    """Worker -> parent: owned arc sub-snapshots are on disk."""

    kind = "checkpoint_ack"
    round_no: int
    worker: int
    #: shard -> arc state content digest, for the parent's build record.
    arcs: dict = field(default_factory=dict)


@dataclass
class ArcFrame:
    """Worker -> parent after the stop barrier: final owned heavy state."""

    kind = "arc"
    worker: int
    #: ``(vertex, payload)`` per owned vertex, vertex-ascending; payload
    #: is the persist format's per-peer record (``_capture_peer``).
    peers: list
    #: the worker process's peak resident set size (KiB, ``ru_maxrss``).
    peak_rss_kb: int


def encode(frame) -> bytes:
    """Pickle a frame; the byte length is the metered boundary cost."""
    return pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)


def decode(data: bytes):
    return pickle.loads(data)
