"""Ring arc partitioning for sharded overlay construction.

A :class:`ShardPlan` splits the sorted identifier ring into contiguous
arcs, one per shard. Vertices are ordered by ``(identifier, index)`` —
the exact total order :class:`repro.overlay.ring.RingIndex` sorts by —
and the sorted sequence is cut into ``num_shards`` runs of near-equal
size. Each arc therefore covers a contiguous clockwise interval of the
ring: arc ``s`` spans ``[boundaries[s], boundaries[s+1])`` and the last
arc wraps the seam, spanning ``[boundaries[-1], 1) ∪ [0, boundaries[0])``.
Together the arcs tile the full circle, so every identifier in ``[0, 1)``
maps to exactly one shard.

Ownership is **by vertex**, frozen at plan time: identifiers move during
Algorithm 2 reassignment, but a vertex's shard does not. The arc bounds
describe the plan-time interval and are recorded in shard sub-snapshot
manifests (:mod:`repro.shard.snapshot`).

Shards are decoupled from workers: shard ``s`` is executed by worker
``s % num_workers``. A checkpoint taken with 4 shards on 4 workers can
resume on 2 workers (each restoring two arcs) — rebalancing is exactly
"snapshot arc, restore elsewhere".
"""

from __future__ import annotations

import numpy as np

from repro.util.exceptions import ShardError

__all__ = ["ShardPlan"]


class ShardPlan:
    """Contiguous-arc partition of the identifier ring.

    Attributes
    ----------
    num_nodes / num_shards:
        Sizes; ``1 <= num_shards <= num_nodes``.
    order:
        ``(n,)`` int64 — vertices in clockwise ``(identifier, index)``
        order at plan time.
    starts:
        ``(num_shards + 1,)`` int64 — offsets into ``order``; shard ``s``
        owns ``order[starts[s]:starts[s+1]]`` (balanced within one).
    boundaries:
        ``(num_shards,)`` float64 — the identifier of each shard's first
        vertex; the lower bound of its arc.
    vertex_shard:
        ``(n,)`` int64 — owning shard of each vertex.
    """

    __slots__ = ("num_nodes", "num_shards", "order", "starts", "boundaries", "vertex_shard")

    def __init__(self, num_nodes: int, num_shards: int, order, boundaries):
        self.num_nodes = int(num_nodes)
        self.num_shards = int(num_shards)
        self.order = np.asarray(order, dtype=np.int64)
        self.boundaries = np.asarray(boundaries, dtype=np.float64)
        n, s = self.num_nodes, self.num_shards
        self.starts = np.array([(k * n) // s for k in range(s + 1)], dtype=np.int64)
        self.vertex_shard = np.empty(n, dtype=np.int64)
        for k in range(s):
            self.vertex_shard[self.order[self.starts[k] : self.starts[k + 1]]] = k

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_ids(cls, ids: np.ndarray, num_shards: int) -> "ShardPlan":
        """Partition the ring as the identifiers stand right now."""
        ids = np.asarray(ids, dtype=np.float64)
        n = len(ids)
        if num_shards < 1:
            raise ShardError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > n:
            raise ShardError(
                f"cannot cut a {n}-vertex ring into {num_shards} arcs: "
                f"every arc needs at least one vertex"
            )
        order = np.lexsort((np.arange(n), ids))
        starts = [(k * n) // num_shards for k in range(num_shards)]
        boundaries = ids[order[starts]]
        return cls(n, num_shards, order, boundaries)

    # -- queries ---------------------------------------------------------------

    def shard_vertices(self, shard: int) -> np.ndarray:
        """Vertices of ``shard`` in clockwise ring order."""
        return self.order[self.starts[shard] : self.starts[shard + 1]]

    def shard_of_vertex(self, vertex: int) -> int:
        return int(self.vertex_shard[vertex])

    def shard_of_point(self, x: float) -> int:
        """The arc containing ring position ``x`` (seam wrap included)."""
        j = int(np.searchsorted(self.boundaries, x, side="right")) - 1
        return j if j >= 0 else self.num_shards - 1

    def arc_bounds(self, shard: int) -> "tuple[float, float]":
        """``[lo, hi)`` of the arc; the last arc's ``hi`` wraps past 1.0."""
        lo = float(self.boundaries[shard])
        hi = float(self.boundaries[(shard + 1) % self.num_shards])
        return lo, hi

    def worker_shards(self, worker: int, num_workers: int) -> "list[int]":
        """Shards executed by ``worker`` (round-robin over shards)."""
        return list(range(worker, self.num_shards, num_workers))

    def worker_mask(self, worker: int, num_workers: int) -> np.ndarray:
        """Boolean ownership mask over vertices for ``worker``."""
        mask = np.zeros(self.num_nodes, dtype=bool)
        for s in self.worker_shards(worker, num_workers):
            mask[self.shard_vertices(s)] = True
        return mask

    # -- validation ------------------------------------------------------------

    def validate(self, ids: "np.ndarray | None" = None) -> None:
        """Raise :class:`ShardError` unless the plan partitions the ring.

        Checks: shard count bounds, ``order`` is a permutation (so the
        arcs are non-overlapping and jointly cover every vertex), each
        arc non-empty and contiguous in the sorted order, boundaries
        non-decreasing with the seam wrap on the last arc only. With
        ``ids`` the plan is checked against the live ring: ``order`` must
        sort ``(id, index)`` and each boundary must be its arc's first
        identifier.
        """
        n, s = self.num_nodes, self.num_shards
        if not (1 <= s <= n):
            raise ShardError(f"invalid plan: {s} shards over {n} vertices")
        if len(self.order) != n:
            raise ShardError(f"invalid plan: order has {len(self.order)} entries for {n} vertices")
        seen = np.zeros(n, dtype=bool)
        seen[self.order] = True
        if not seen.all():
            missing = int(np.flatnonzero(~seen)[0])
            raise ShardError(
                f"invalid plan: order is not a permutation (vertex {missing} unassigned "
                f"— arcs overlap or leave a gap)"
            )
        if (self.starts[1:] <= self.starts[:-1]).any():
            raise ShardError("invalid plan: empty arc (shard counts must be >= 1)")
        if len(self.boundaries) != s:
            raise ShardError(
                f"invalid plan: {len(self.boundaries)} boundaries for {s} shards"
            )
        if (np.diff(self.boundaries) < 0).any():
            raise ShardError(
                "invalid plan: arc boundaries out of clockwise order "
                "(only the last arc may wrap the seam)"
            )
        if ids is not None:
            ids = np.asarray(ids, dtype=np.float64)
            key = list(zip(ids[self.order].tolist(), self.order.tolist()))
            if key != sorted(key):
                raise ShardError("invalid plan: order does not sort the live (id, index) ring")
            firsts = ids[self.order[self.starts[:-1]]]
            if not np.array_equal(firsts, self.boundaries):
                raise ShardError(
                    "invalid plan: boundaries do not match each arc's first identifier"
                )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "num_shards": self.num_shards,
            "order": [int(v) for v in self.order],
            "boundaries": [float(b) for b in self.boundaries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        plan = cls(
            int(data["num_nodes"]),
            int(data["num_shards"]),
            data["order"],
            data["boundaries"],
        )
        plan.validate()
        return plan
