"""Per-arc round execution for sharded construction.

Every replica — the parent and each worker — holds the same *light*
state (identifiers, routing tables, the admission ledger, ``moves_done``)
and keeps it in lockstep by applying the same barrier outcome in the
same order. *Heavy* gossip state (``known_*`` dicts, bitmaps, lookahead,
top-2 anchors, stability counters) is owner-private: only the worker
owning a vertex mutates or reads it, which is what makes the arcs
independent between barriers.

A round on one worker (:meth:`ShardWorkerCore.run_round`):

1. **Draw replication** — run :func:`~repro.core.vectorized.draw_partners`
   over the *whole* network. During construction the partner draw is the
   only RNG consumer and its inputs (join flags, degrees) are static, so
   every replica advances an identical generator to identical draws —
   partner selection crosses no process boundary and is trivially
   worker-count independent.
2. **Exchange** — compute the Alg. 3–4 quantities for the pairs that
   involve an owned vertex (both sides are derivable from replicated
   light state) and apply ``learn_exchange`` to owned targets only, in
   the global pair order (the filtered sequence preserves each target's
   single-process event order).
3. **Evaluate** (Alg. 2) — the vectorized kernel over owned rows.
4. **Plan** (Algs. 5–6) — :func:`~repro.core.links.plan_links` for each
   gated-in owned vertex against the round-start admission ledger;
   emitted as sorted net diffs.

At the barrier every replica applies the merged plan log in vertex order
(:func:`apply_plan_log` — adds re-checked against the live ledger, so
refusals are resolved identically everywhere) and publishes the
deduplicated identifiers (:func:`publish_ids`).
"""

from __future__ import annotations

import numpy as np

from repro.core.links import plan_links
from repro.core.vectorized import draw_partners, evaluate_positions

__all__ = ["ShardWorkerCore", "apply_plan_log", "publish_ids"]


def apply_plan_log(overlay, plans) -> "set[int]":
    """Apply a merged plan log to a replica; returns the changed vertices.

    ``plans`` must be sorted by vertex — the deterministic application
    order every replica shares. Adds go through ``_try_connect`` so the
    K-incoming cap is re-enforced against the live ledger (a plan made
    against round-start state can lose a slot to an earlier vertex); a
    vertex whose drops are empty and whose adds are all refused is not
    counted as changed.
    """
    changed: set[int] = set()
    tables = overlay.tables
    for v, drops, adds in plans:
        links = tables[v].long_links
        ch = False
        for w in drops:
            links.discard(w)
            overlay._disconnect(v, w)
            ch = True
        for w in adds:
            if overlay._try_connect(v, w):
                links.add(w)
                ch = True
        if ch:
            changed.add(v)
    return changed


def publish_ids(overlay, changed_idx, changed_vals, tolerance: float) -> int:
    """Apply the barrier's identifier delta; returns the move count.

    ``changed_idx``/``changed_vals`` are the rows where the deduplicated
    pending vector differs bitwise from the round-start identifiers.
    Rows whose ring displacement exceeds ``tolerance`` count as moves
    (and charge ``moves_done``), exactly as the single-process barrier
    computes from its full-vector diff — unchanged rows diff to zero.
    """
    old = overlay.ids[changed_idx]
    diff = np.mod(np.abs(old - changed_vals), 1.0)
    diff = np.minimum(diff, 1.0 - diff)
    moved = changed_idx[diff > tolerance]
    overlay.columns.moves_done[moved] += 1
    overlay.ids[changed_idx] = changed_vals
    overlay._refresh_ring()
    return len(moved)


class ShardWorkerCore:
    """Executes one arc set's share of every construction round."""

    __slots__ = ("ov", "owned_mask", "owned", "rng", "round_no", "last_pairs")

    def __init__(self, overlay, owned_mask: np.ndarray, rng):
        self.ov = overlay
        self.owned_mask = np.asarray(owned_mask, dtype=bool)
        self.owned = np.flatnonzero(self.owned_mask)
        self.rng = rng
        self.round_no = int(overlay._round_no)
        #: the round's full (initiator, partner) draw — exposed so the
        #: inline engine can count cross-arc pairs without re-drawing.
        self.last_pairs = (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )

    def run_round(self) -> "tuple[list, np.ndarray]":
        """Draws, exchange, evaluation, and planning for one round.

        Returns ``(plans, pending_owned)``: the sorted net link diffs for
        owned vertices and the owned slice of the Alg. 2 proposals.
        """
        ov = self.ov
        cfg = ov.config
        n = ov.graph.num_nodes
        peers = ov.peers
        actives, partners = draw_partners(
            ov._nbr_indptr,
            ov._nbr_indices,
            ov.joined,
            self.rng,
            cfg.exchanges_per_round,
        )
        if actives.size:
            fp_all = np.repeat(actives, cfg.exchanges_per_round)
            fq_all = partners.reshape(-1)
            self.last_pairs = (fp_all, fq_all)
            mine = self.owned_mask[fp_all] | self.owned_mask[fq_all]
            fp = fp_all[mine]
            fq = fq_all[mine]
            if fp.size:
                # Sorted key table of every peer's current links — light
                # state, identical on every replica at round start.
                views = [t.link_view() for t in ov.tables]
                arrs = [t._arr for t in ov.tables]
                counts = np.fromiter((len(a) for a in arrs), dtype=np.int64, count=n)
                owners = np.repeat(np.arange(n, dtype=np.int64), counts)
                flat = np.concatenate(arrs) if arrs else np.zeros(0, dtype=np.int64)
                link_keys = np.sort(owners * n + flat)
                kern = ov._xkernel
                mutual = kern.mutual_counts(fp, fq)
                # Bitmaps feed learn_exchange only, so each side is
                # computed just for the pairs whose target we own.
                need_p = self.owned_mask[fp]
                need_q = self.owned_mask[fq]
                bitmaps_p = kern.bitmap_ints(fp[need_p], fq[need_p], link_keys)
                bitmaps_q = kern.bitmap_ints(fq[need_q], fp[need_q], link_keys)
                fpl = fp.tolist()
                fql = fq.tolist()
                ml = mutual.tolist()
                npl = need_p.tolist()
                nql = need_q.tolist()
                ip = iq = 0
                for i in range(len(fpl)):
                    p = fpl[i]
                    q = fql[i]
                    if npl[i]:
                        peers[p].learn_exchange(q, ml[i], bitmaps_p[ip], views[q])
                        ip += 1
                    if nql[i]:
                        peers[q].learn_exchange(p, ml[i], bitmaps_q[iq], views[p])
                        iq += 1
        cols = ov.columns
        if cfg.reassign_ids:
            eligible = ov.joined & (cols.moves_done < cfg.max_moves) & self.owned_mask
            if cfg.reassign_stride > 1:
                rota = (np.arange(n) + self.round_no) % cfg.reassign_stride == 0
                eligible = eligible & rota
        else:
            eligible = np.zeros(n, dtype=bool)
        pending = evaluate_positions(
            ov.ids,
            cols.top2,
            cols.anchor_pair,
            cols.anchor_target,
            eligible,
            ov._degs,
            tolerance=cfg.movement_tolerance,
            merge_radius=cfg.merge_radius,
        )
        plans = []
        k_links = ov.k_links
        incoming = ov.incoming_count
        stabilize_after = cfg.stabilize_after
        for v in self.owned.tolist():
            peer = peers[v]
            if not peer.joined:
                continue
            if peer.stable_rounds < stabilize_after and peer.link_change_budget > 0:
                virtual = plan_links(peer, k_links, incoming)
                if virtual is not None:
                    current = peer.table.long_links
                    drops = tuple(sorted(w for w in current if w not in virtual))
                    adds = tuple(sorted(w for w in virtual if w not in current))
                    plans.append((v, drops, adds))
        return plans, pending[self.owned]

    def update_counters(self, changed: "set[int]") -> None:
        """Post-apply stability/budget bookkeeping for owned vertices.

        Mirrors the vertex program: a changed link set resets the
        stability streak and spends budget; any other owned joined vertex
        extends its streak (including gated-out ones); non-joined
        vertices halt without touching their counters.
        """
        cols = self.ov.columns
        owned = self.owned[self.ov.joined[self.owned]]
        ch = np.fromiter(
            (v in changed for v in owned.tolist()), dtype=bool, count=len(owned)
        )
        hit = owned[ch]
        cols.stable_rounds[hit] = 0
        cols.link_change_budget[hit] -= 1
        cols.stable_rounds[owned[~ch]] += 1

    def advance_round(self) -> None:
        self.round_no += 1
        self.ov._round_no = self.round_no
