"""repro.shard — ring-sharded multiprocess overlay construction.

The subsystem that lets one SELECT build span worker processes:
:class:`~repro.shard.plan.ShardPlan` cuts the sorted identifier ring
into contiguous arcs, :class:`~repro.shard.engine.ShardedOverlayEngine`
runs each arc's supersteps in forked workers under a typed barrier
protocol (:mod:`repro.shard.frames`), and :mod:`repro.shard.snapshot`
checkpoints each arc as a sub-snapshot of the persist format so builds
survive worker crashes and rebalance across worker counts.

Entry point: set ``SelectConfig.num_workers`` (and optionally
``shards``) and call ``SelectOverlay.build`` as usual — the result is
bit-identical at any worker count.
"""

from repro.shard.engine import ShardedOverlayEngine
from repro.shard.frames import ArcFrame, BarrierFrame, CheckpointAck, PlanFrame
from repro.shard.plan import ShardPlan
from repro.shard.rounds import ShardWorkerCore, apply_plan_log, publish_ids

__all__ = [
    "ShardPlan",
    "ShardedOverlayEngine",
    "ShardWorkerCore",
    "apply_plan_log",
    "publish_ids",
    "PlanFrame",
    "BarrierFrame",
    "CheckpointAck",
    "ArcFrame",
]
