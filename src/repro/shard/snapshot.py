"""Shard sub-snapshots: arc state on disk, build records, generations.

A sharded build checkpoints as one **generation** directory per
checkpointed round::

    <ckpt_dir>/gen-000012/
        shard-000/manifest.json   # select-repro/shard/v1
        shard-000/state.json      # per-peer persist payloads for the arc
        shard-001/...
        build.json                # parent record — written LAST

Each ``shard-NNN`` directory is a *sub-snapshot* of the persist format
(PR 5): its ``state.json`` carries the exact
:func:`repro.persist.snapshot._capture_peer` payload for every vertex of
that arc, and its manifest binds the arc to its parent build via the
parent's content-derived snapshot id. The parent's ``build.json``
carries everything the light replica needs to resume (identifiers,
routing tables, admission ledger, RNG state, trace, the
:class:`~repro.shard.plan.ShardPlan`) and is written **after** every
worker has acked its arcs — so a generation containing ``build.json`` is
complete by construction, and a crash at any instant leaves either a
complete generation or a partial one that restore skips.

Arcs are keyed by *shard*, not worker: a checkpoint taken with 4 shards
on 4 workers restores on 2 workers by handing each worker two arc
directories (the manifest's ``worker`` field records who wrote it, which
is how the engine counts rebalances).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict

import numpy as np

from repro.net.growth import JoinEvent
from repro.persist.snapshot import (
    _capture_peer,
    _restore_peer,
    graph_fingerprint,
    snapshot_id,
)
from repro.shard.plan import ShardPlan
from repro.sim.trace import TraceRecorder
from repro.util.atomicio import atomic_write_json
from repro.util.exceptions import ShardError, SnapshotIntegrityError
from repro.util.rng import generator_state, restore_generator

__all__ = [
    "ARC_SCHEMA",
    "BUILD_SCHEMA",
    "BUILD_FILE",
    "capture_build_state",
    "restore_build_state",
    "write_build_record",
    "load_build",
    "save_arc",
    "load_arc",
    "restore_arc",
    "generation_dir",
    "latest_generation",
    "prune_generations",
]

ARC_SCHEMA = "select-repro/shard/v1"
BUILD_SCHEMA = "select-repro/shard-build/v1"
BUILD_FILE = "build.json"
_GEN_PREFIX = "gen-"
_SHARD_PREFIX = "shard-"


def generation_dir(root: str, round_no: int) -> str:
    return os.path.join(root, f"{_GEN_PREFIX}{round_no:06d}")


def _shard_dir(gen_dir: str, shard: int) -> str:
    return os.path.join(gen_dir, f"{_SHARD_PREFIX}{shard:03d}")


# -- parent build record -------------------------------------------------------


def capture_build_state(overlay, plan: ShardPlan, rng, num_workers: int) -> dict:
    """The light replica's resume payload at a round barrier.

    Heavy gossip state is *not* here — it lives in the arcs. The id is
    content-derived (no timestamps), so the same barrier re-captured
    yields the same ``build.json`` byte-for-byte.
    """
    return {
        "schema": BUILD_SCHEMA,
        "round": int(overlay._round_no),
        "quiet_rounds": int(overlay._quiet_rounds),
        "iterations": int(overlay.iterations),
        "k_links": int(overlay.k_links),
        "lsh_seed": int(overlay._lsh_seed),
        "config": asdict(overlay.config),
        "graph_fingerprint": graph_fingerprint(overlay.graph),
        "num_workers": int(num_workers),
        "plan": plan.to_dict(),
        "rng": generator_state(rng),
        "ids": [float(x) for x in overlay.ids],
        "pending_ids": [float(x) for x in overlay.pending_ids],
        "joined": [bool(x) for x in overlay.joined],
        "moves_done": [int(x) for x in overlay.columns.moves_done],
        "incoming_sources": [
            sorted(int(w) for w in srcs) for srcs in overlay._incoming_sources
        ],
        "long_links": [
            sorted(int(w) for w in t.long_links) for t in overlay.tables
        ],
        "join_events": [
            [int(e.step), int(e.user), None if e.inviter is None else int(e.inviter)]
            for e in overlay.join_events
        ],
        "trace": overlay.trace.to_rows(),
    }


def restore_build_state(overlay, state: dict):
    """Roll the light replica back to a build record; returns the RNG.

    Restores everything every replica shares: identifiers, routing
    tables, the admission ledger, movement counters, trace, and round
    bookkeeping. Heavy per-peer state must be restored separately from
    the generation's arcs (:func:`restore_arc`) by whoever owns it.
    """
    if state.get("schema") != BUILD_SCHEMA:
        raise ShardError(
            f"unsupported build record schema {state.get('schema')!r} "
            f"(expected {BUILD_SCHEMA!r})"
        )
    fp = graph_fingerprint(overlay.graph)
    if state["graph_fingerprint"] != fp:
        raise ShardError(
            f"checkpoint graph mismatch: overlay fingerprint {fp} != "
            f"checkpoint {state['graph_fingerprint']}"
        )
    if int(state["k_links"]) != int(overlay.k_links):
        raise ShardError(
            f"checkpoint k_links mismatch: overlay has {overlay.k_links}, "
            f"checkpoint has {state['k_links']}"
        )
    # In place: ids/joined are shared column storage (PeerState views).
    overlay.ids[:] = np.asarray(state["ids"], dtype=np.float64)
    overlay.pending_ids[:] = np.asarray(state["pending_ids"], dtype=np.float64)
    overlay.joined[:] = np.asarray(state["joined"], dtype=bool)
    overlay.columns.moves_done[:] = np.asarray(state["moves_done"], dtype=np.int64)
    overlay._incoming_sources = [set(srcs) for srcs in state["incoming_sources"]]
    overlay.incoming_count[:] = [len(s) for s in overlay._incoming_sources]
    for table, links in zip(overlay.tables, state["long_links"]):
        table.long_links = [int(w) for w in links]
    overlay._lsh_seed = int(state["lsh_seed"])
    overlay.join_events = [
        JoinEvent(step=int(s), user=int(u), inviter=None if i is None else int(i))
        for s, u, i in state["join_events"]
    ]
    overlay._round_no = int(state["round"])
    overlay._quiet_rounds = int(state["quiet_rounds"])
    overlay.iterations = int(state["iterations"])
    overlay.round_link_changes = 0
    trace = TraceRecorder()
    for row in state["trace"]:
        trace.record(row["series"], row["round"], row["value"])
    overlay.trace = trace
    overlay._refresh_ring()
    return restore_generator(state["rng"])


def write_build_record(gen_dir: str, state: dict) -> str:
    """Atomically write ``build.json``; returns the build id.

    This is the *last* write of a generation — its presence (with a
    matching digest) is what marks the generation complete.
    """
    build_id = snapshot_id(state)
    atomic_write_json(
        os.path.join(gen_dir, BUILD_FILE),
        {"build_id": build_id, "state": state},
        separators=(",", ":"),
        sort_keys=True,
    )
    return build_id


def load_build(gen_dir: str) -> "tuple[str, dict]":
    path = os.path.join(gen_dir, BUILD_FILE)
    if not os.path.isfile(path):
        raise ShardError(f"incomplete generation (no {BUILD_FILE}): {gen_dir}")
    with open(path, "r", encoding="utf-8") as fh:
        record = json.load(fh)
    build_id, state = record["build_id"], record["state"]
    digest = snapshot_id(state)
    if digest != build_id:
        raise SnapshotIntegrityError(
            f"build record integrity check failed at {path}: "
            f"state digest {digest} != build_id {build_id}"
        )
    return build_id, state


# -- arc sub-snapshots ---------------------------------------------------------


def save_arc(
    gen_dir: str,
    shard: int,
    worker: int,
    plan: ShardPlan,
    overlay,
    round_no: int,
    parent_id: str,
) -> str:
    """Write one shard's sub-snapshot; returns the arc state id.

    ``state.json`` lands first, then the manifest that vouches for it —
    the persist format's write ordering, at arc granularity.
    """
    vertices = plan.shard_vertices(shard)
    lo, hi = plan.arc_bounds(shard)
    state = {
        "vertices": [int(v) for v in vertices],
        "peers": [_capture_peer(overlay.peers[int(v)]) for v in vertices],
    }
    state_id = snapshot_id(state)
    manifest = {
        "schema": ARC_SCHEMA,
        "shard": int(shard),
        "worker": int(worker),
        "arc": [float(lo), float(hi)],
        "round": int(round_no),
        "parent_snapshot_id": str(parent_id),
        "num_vertices": len(vertices),
        "state_id": state_id,
    }
    arc_dir = _shard_dir(gen_dir, shard)
    os.makedirs(arc_dir, exist_ok=True)
    atomic_write_json(
        os.path.join(arc_dir, "state.json"), state, separators=(",", ":"), sort_keys=True
    )
    atomic_write_json(os.path.join(arc_dir, "manifest.json"), manifest, indent=2, sort_keys=True)
    return state_id


def load_arc(arc_dir: str) -> "tuple[dict, dict]":
    """Read one arc sub-snapshot back; verifies schema and digest."""
    mpath = os.path.join(arc_dir, "manifest.json")
    spath = os.path.join(arc_dir, "state.json")
    for p in (mpath, spath):
        if not os.path.isfile(p):
            raise ShardError(f"missing arc file: {p}")
    with open(mpath, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    if manifest.get("schema") != ARC_SCHEMA:
        raise ShardError(
            f"unsupported arc schema {manifest.get('schema')!r} (expected {ARC_SCHEMA!r})"
        )
    with open(spath, "r", encoding="utf-8") as fh:
        state = json.load(fh)
    digest = snapshot_id(state)
    if digest != manifest.get("state_id"):
        raise SnapshotIntegrityError(
            f"arc integrity check failed at {arc_dir}: state digest {digest} != "
            f"manifest state_id {manifest.get('state_id')}"
        )
    if len(state["vertices"]) != manifest["num_vertices"]:
        raise ShardError(
            f"arc {arc_dir} carries {len(state['vertices'])} vertices, "
            f"manifest says {manifest['num_vertices']}"
        )
    return manifest, state


def restore_arc(overlay, state: dict) -> None:
    """Restore an arc's heavy per-peer state into a replica."""
    for v, payload in zip(state["vertices"], state["peers"]):
        peer = overlay.peers[int(v)]
        _restore_peer(peer, payload)
        peer.lsh_family = overlay.lsh_family_for(peer.node)
        peer.k_buckets = overlay.k_links


# -- generation management -----------------------------------------------------


def _generation_rounds(root: str) -> "list[tuple[int, str]]":
    if not os.path.isdir(root):
        return []
    out = []
    for name in os.listdir(root):
        if name.startswith(_GEN_PREFIX):
            try:
                rnd = int(name[len(_GEN_PREFIX) :])
            except ValueError:
                continue
            out.append((rnd, os.path.join(root, name)))
    return sorted(out)


def _is_complete(gen_dir: str) -> bool:
    """A generation is complete iff its parent record vouches for every arc."""
    try:
        build_id, state = load_build(gen_dir)
        plan = ShardPlan.from_dict(state["plan"])
        for s in range(plan.num_shards):
            manifest, _ = load_arc(_shard_dir(gen_dir, s))
            if manifest["parent_snapshot_id"] != build_id:
                return False
            if manifest["shard"] != s:
                return False
    except (ShardError, SnapshotIntegrityError, KeyError, json.JSONDecodeError):
        return False
    return True


def latest_generation(root: str) -> "str | None":
    """The newest *complete* generation under ``root`` (None if none)."""
    for _, gen_dir in reversed(_generation_rounds(root)):
        if _is_complete(gen_dir):
            return gen_dir
    return None


def prune_generations(root: str, keep: int = 2) -> int:
    """Delete all but the newest ``keep`` complete generations.

    Partial generations older than the newest complete one are removed
    too (they can never be restored). Returns the number removed.
    """
    import shutil

    gens = _generation_rounds(root)
    complete = [d for _, d in gens if _is_complete(d)]
    survivors = set(complete[-keep:]) if keep > 0 else set()
    if complete:
        newest_complete = complete[-1]
    else:
        return 0
    removed = 0
    for _, gen_dir in gens:
        if gen_dir in survivors:
            continue
        if gen_dir > newest_complete:
            continue  # a partial generation newer than the newest complete
        shutil.rmtree(gen_dir, ignore_errors=True)
        removed += 1
    return removed
