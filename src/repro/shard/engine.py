"""The sharded multiprocess overlay construction engine.

Topology: a star of ``fork``-started worker processes around the parent.
Each worker inherits the whole overlay copy-on-write at fork time and
executes the construction supersteps for the ring arcs it owns
(:class:`~repro.shard.rounds.ShardWorkerCore`); the parent maintains the
*light* replica (identifiers, routing tables, admission ledger, RNG,
trace) and runs the barrier: it merges the workers' plan frames, settles
link reassignment and identifier deduplication globally, and broadcasts
one :class:`~repro.shard.frames.BarrierFrame` that every replica applies
identically. Heavy gossip state never crosses the boundary until the
stop barrier, when each worker hands its arcs back in an
:class:`~repro.shard.frames.ArcFrame`.

Determinism: the build is bit-identical at any worker count — and to the
``num_workers=1`` in-process path — because every non-local quantity is
either replicated (partner draws, exchange inputs) or settled once at
the barrier in vertex order (see DESIGN.md, "Sharded construction
determinism contract"). The parent keeps a running SHA-256 over every
frame byte sent or received; two same-seed runs produce identical
digests.

Fault tolerance: with a checkpoint directory the engine writes
generation directories (:mod:`repro.shard.snapshot`) — round 0 always,
then every ``checkpoint_every`` rounds. A worker crash (pipe EOF) tears
the fleet down, rolls the light replica back to the newest complete
generation, re-forks, and each new worker restores its arcs from disk —
including arcs originally written by a different worker (a *rebalance*:
the shard-to-worker map is just ``shard % num_workers``, so the same
checkpoint restores at any worker count).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import resource
import time

import numpy as np

from repro.core.vectorized import dedup_ids, draw_partners
from repro.persist.snapshot import _capture_peer, _restore_peer, snapshot_id
from repro.shard.frames import (
    ArcFrame,
    BarrierFrame,
    CheckpointAck,
    PlanFrame,
    decode,
    encode,
)
from repro.shard.plan import ShardPlan
from repro.shard.rounds import ShardWorkerCore, apply_plan_log, publish_ids
from repro.shard.snapshot import (
    capture_build_state,
    generation_dir,
    latest_generation,
    load_arc,
    load_build,
    prune_generations,
    restore_arc,
    restore_build_state,
    save_arc,
    write_build_record,
)
from repro.telemetry import NULL_REGISTRY
from repro.util.exceptions import ShardError
from repro.util.rng import as_generator

__all__ = ["ShardedOverlayEngine"]

_FRAME_KINDS = ("plan", "barrier", "checkpoint_ack", "arc")


def _worker_main(conn, overlay, plan, rng, worker, num_workers, restore_gen, fail_at):
    """Worker process body: restore owned arcs, then run the round loop.

    ``overlay``/``rng`` are the fork-inherited copies — never pickled.
    ``fail_at`` is the crash-injection test hook: ``(worker, round)``
    makes that worker die with ``os._exit`` just before sending its plan
    frame for that round.
    """
    try:
        if restore_gen is not None:
            for s in plan.worker_shards(worker, num_workers):
                _, astate = load_arc(os.path.join(restore_gen, f"shard-{s:03d}"))
                restore_arc(overlay, astate)
        core = ShardWorkerCore(overlay, plan.worker_mask(worker, num_workers), rng)
        cfg = overlay.config
        while True:
            plans, pending = core.run_round()
            if fail_at is not None and (worker, core.round_no) == tuple(fail_at):
                os._exit(42)
            conn.send_bytes(encode(PlanFrame(core.round_no, worker, plans, pending)))
            barrier = decode(conn.recv_bytes())
            changed = apply_plan_log(overlay, barrier.plans)
            core.update_counters(changed)
            publish_ids(
                overlay,
                barrier.changed_idx,
                barrier.changed_vals,
                cfg.movement_tolerance,
            )
            core.advance_round()
            if barrier.checkpoint is not None:
                gen_dir, parent_id = barrier.checkpoint
                arcs = {}
                for s in plan.worker_shards(worker, num_workers):
                    arcs[s] = save_arc(
                        gen_dir, s, worker, plan, overlay, core.round_no, parent_id
                    )
                conn.send_bytes(encode(CheckpointAck(core.round_no, worker, arcs)))
            if barrier.stop:
                payload = [
                    (int(v), _capture_peer(overlay.peers[int(v)]))
                    for v in core.owned.tolist()
                ]
                rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
                conn.send_bytes(encode(ArcFrame(worker, payload, rss)))
                conn.close()
                return
    except (EOFError, BrokenPipeError, ConnectionResetError, KeyboardInterrupt):
        os._exit(1)


class ShardedOverlayEngine:
    """Drives a :class:`~repro.core.select.SelectOverlay` build over arcs.

    Configuration comes from the overlay's ``SelectConfig``
    (``num_workers``, ``shards``) plus the keyword options the overlay
    passes through from ``overlay.shard_opts``. After ``build`` the
    run's accounting is in :attr:`stats` (mirrored to
    ``overlay.shard_stats`` by the caller).
    """

    def __init__(
        self,
        overlay,
        *,
        registry=None,
        checkpoint_dir: "str | None" = None,
        checkpoint_every: int = 0,
        resume_from: "str | None" = None,
        max_restarts: int = 2,
        _fail_at: "tuple[int, int] | None" = None,
    ):
        self.overlay = overlay
        self.num_workers = int(overlay.config.num_workers)
        self.num_shards = int(overlay.config.effective_shards)
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = int(checkpoint_every)
        self.resume_from = resume_from
        self.max_restarts = int(max_restarts)
        self._fail_at = _fail_at
        self.stats: dict = {}
        # run accounting (the registry mirrors these as shard.* metrics)
        self.iterations = 0
        self.rounds = 0
        self.restarts = 0
        self.checkpoints = 0
        self.rebalances = 0
        self.cross_arc_pairs = 0
        self.boundary_bytes = 0
        self.barrier_wait = 0.0
        self.frame_counts = {k: 0 for k in _FRAME_KINDS}
        self.worker_peak_rss: list[int] = []
        self._digest = hashlib.sha256()
        self._any_frames = False
        self._procs: list = []
        self._conns: list = []
        reg = self.registry
        self._m_frames = {
            k: reg.counter("shard.frames", labels={"kind": k}) for k in _FRAME_KINDS
        }
        self._m_bytes = reg.counter("shard.boundary_bytes")
        self._m_rounds = reg.counter("shard.rounds")
        self._m_ckpt = reg.counter("shard.checkpoints")
        self._m_restarts = reg.counter("shard.restarts")
        self._m_rebal = reg.counter("shard.rebalances")
        self._m_cross = reg.counter("shard.cross_arc_pairs")
        self._m_wait = reg.histogram("shard.barrier_wait_seconds")

    # -- top level -------------------------------------------------------------

    def build(self, seed=None):
        """Run (or resume) the full sharded construction pipeline."""
        ov = self.overlay
        restore_gen = None
        if self.resume_from is not None:
            gen = latest_generation(self.resume_from)
            if gen is None:
                raise ShardError(
                    f"cannot resume: no complete checkpoint generation under "
                    f"{self.resume_from}"
                )
            rng, plan = self._rollback(gen)
            restore_gen = gen
        else:
            rng = as_generator(seed)
            ov._lsh_seed = int(rng.integers(2**31 - 1))
            ov._project(rng)
            ov._bootstrap(rng)
            ov._refresh_ring()
            plan = ShardPlan.from_ids(ov.ids, self.num_shards)
            plan.validate(ov.ids)
            if self.checkpoint_dir:
                # Round-0 generation: the parent still owns all heavy
                # state (fresh off bootstrap), so it writes every arc
                # itself. This is also what guarantees a crash at *any*
                # round has a generation to roll back to.
                self._checkpoint_full(plan, rng)
        self.iterations = int(ov.iterations)
        if self.num_workers == 1:
            self._run_inline(plan, rng, restore_gen)
        else:
            self._run_forked(plan, rng, restore_gen)
        ov.iterations = self.iterations
        ov._materialize_successors()
        ov._mark_built()
        self.stats = {
            "workers": self.num_workers,
            "shards": plan.num_shards,
            "rounds": self.rounds,
            "iterations": self.iterations,
            "restarts": self.restarts,
            "checkpoints": self.checkpoints,
            "rebalances": self.rebalances,
            "frames": dict(self.frame_counts),
            "boundary_bytes": self.boundary_bytes,
            "barrier_wait_s": self.barrier_wait,
            "cross_arc_pairs": self.cross_arc_pairs,
            "worker_peak_rss_kb": list(self.worker_peak_rss),
            "frame_digest": self._digest.hexdigest() if self._any_frames else None,
        }
        return ov

    # -- shared bookkeeping ----------------------------------------------------

    def _end_round(self, moves: int, link_changes: int) -> bool:
        """Trace + quiescence accounting; True when construction stops."""
        ov = self.overlay
        cfg = ov.config
        self.iterations += 1
        ov.iterations = self.iterations
        ov.trace.record("id_moves", self.iterations, moves)
        ov.trace.record("link_changes", self.iterations, link_changes)
        noise_floor = max(1, ov.graph.num_nodes // 50)
        if moves <= noise_floor and link_changes <= noise_floor:
            ov._quiet_rounds += 1
        else:
            ov._quiet_rounds = 0
        ov.round_link_changes = 0
        self.rounds += 1
        self._m_rounds.inc()
        return (
            ov._quiet_rounds >= cfg.convergence_rounds
            or self.iterations >= cfg.max_rounds
        )

    def _count_cross(self, plan: ShardPlan, pairs) -> None:
        fp, fq = pairs
        if len(fp) == 0 or plan.num_shards < 2:
            return
        c = int((plan.vertex_shard[fp] != plan.vertex_shard[fq]).sum())
        self.cross_arc_pairs += c
        self._m_cross.inc(c)

    def _meter(self, data: bytes, kind: str) -> None:
        self.frame_counts[kind] += 1
        self.boundary_bytes += len(data)
        if kind != "arc":
            # Arc frames carry the worker's measured peak RSS, which
            # varies run to run; the digest pins only the
            # seed-deterministic protocol stream (plan/barrier/ack).
            self._digest.update(data)
            self._any_frames = True
        self._m_frames[kind].inc()
        self._m_bytes.inc(len(data))

    def _should_checkpoint(self, stop: bool) -> bool:
        return bool(
            self.checkpoint_dir
            and self.checkpoint_every
            and not stop
            and self.overlay._round_no % self.checkpoint_every == 0
        )

    # -- checkpointing ---------------------------------------------------------

    def _checkpoint_full(self, plan: ShardPlan, rng) -> None:
        """Parent-only generation write (round 0 and the inline path)."""
        ov = self.overlay
        state = capture_build_state(ov, plan, rng, self.num_workers)
        gen = generation_dir(self.checkpoint_dir, ov._round_no)
        os.makedirs(gen, exist_ok=True)
        build_id = snapshot_id(state)
        for s in range(plan.num_shards):
            save_arc(gen, s, s % self.num_workers, plan, ov, ov._round_no, build_id)
        write_build_record(gen, state)
        prune_generations(self.checkpoint_dir)
        self.checkpoints += 1
        self._m_ckpt.inc()

    def _rollback(self, gen: str) -> "tuple[np.random.Generator, ShardPlan]":
        """Restore the light replica from a generation; count rebalances."""
        ov = self.overlay
        _, state = load_build(gen)
        plan = ShardPlan.from_dict(state["plan"])
        if plan.num_shards < self.num_workers:
            raise ShardError(
                f"checkpoint has {plan.num_shards} shards: cannot resume on "
                f"{self.num_workers} workers (every worker needs an arc)"
            )
        rng = restore_build_state(ov, state)
        for s in range(plan.num_shards):
            mpath = os.path.join(gen, f"shard-{s:03d}", "manifest.json")
            with open(mpath, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            if int(manifest["worker"]) != s % self.num_workers:
                self.rebalances += 1
                self._m_rebal.inc()
        return rng, plan

    # -- inline (num_workers == 1, sharded semantics in-process) ---------------

    def _run_inline(self, plan: ShardPlan, rng, restore_gen: "str | None") -> None:
        """One replica plays parent and sole worker — the parity anchor.

        Runs the exact sharded semantics (stale-ledger plans, vertex-order
        barrier apply) with no processes and no frames, so its result is
        the fixed point every forked run must match bit-for-bit.
        """
        ov = self.overlay
        if restore_gen is not None:
            for s in range(plan.num_shards):
                _, astate = load_arc(os.path.join(restore_gen, f"shard-{s:03d}"))
                restore_arc(ov, astate)
        core = ShardWorkerCore(
            ov, np.ones(ov.graph.num_nodes, dtype=bool), rng
        )
        cfg = ov.config
        while True:
            plans, pending_owned = core.run_round()
            self._count_cross(plan, core.last_pairs)
            pending = ov.ids.copy()
            pending[core.owned] = pending_owned
            final = dedup_ids(pending)
            changed_idx = np.flatnonzero(ov.ids != final)
            changed_vals = final[changed_idx]
            changed = apply_plan_log(ov, plans)
            core.update_counters(changed)
            moves = publish_ids(ov, changed_idx, changed_vals, cfg.movement_tolerance)
            core.advance_round()
            stop = self._end_round(moves, len(changed))
            if self._should_checkpoint(stop):
                self._checkpoint_full(plan, rng)
            if stop:
                break
        self.worker_peak_rss = [
            int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        ]

    # -- forked (num_workers > 1) ----------------------------------------------

    def _run_forked(self, plan: ShardPlan, rng, restore_gen: "str | None") -> None:
        fail_at = self._fail_at
        while True:
            try:
                self._forked_loop(plan, rng, restore_gen, fail_at)
                return
            except (EOFError, BrokenPipeError, ConnectionResetError) as exc:
                self._teardown()
                self.restarts += 1
                self._m_restarts.inc()
                if self.restarts > self.max_restarts:
                    raise ShardError(
                        f"sharded build failed after {self.restarts} worker "
                        f"crashes (restart budget {self.max_restarts}): {exc!r}"
                    ) from exc
                if not self.checkpoint_dir:
                    raise ShardError(
                        "worker crashed and no checkpoint directory is "
                        "configured — nothing to roll back to"
                    ) from exc
                gen = latest_generation(self.checkpoint_dir)
                if gen is None:
                    raise ShardError(
                        f"worker crashed and no complete generation exists "
                        f"under {self.checkpoint_dir}"
                    ) from exc
                rng, plan = self._rollback(gen)
                restore_gen = gen
                fail_at = None  # the crash hook fires once, on attempt 0
                self.iterations = int(self.overlay.iterations)

    def _fork(self, plan, rng, restore_gen, fail_at) -> None:
        ctx = multiprocessing.get_context("fork")
        self._conns, self._procs = [], []
        for w in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe()
            p = ctx.Process(
                target=_worker_main,
                args=(
                    child_conn,
                    self.overlay,
                    plan,
                    rng,
                    w,
                    self.num_workers,
                    restore_gen,
                    fail_at,
                ),
                daemon=True,
            )
            p.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(p)

    def _teardown(self) -> None:
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        for p in self._procs:
            p.join(timeout=10)
        for c in self._conns:
            try:
                c.close()
            except OSError:
                pass
        self._procs, self._conns = [], []

    def _forked_loop(self, plan, rng, restore_gen, fail_at) -> None:
        ov = self.overlay
        cfg = ov.config
        self._fork(plan, rng, restore_gen, fail_at)
        conns = self._conns
        owned_idx = [
            np.flatnonzero(plan.worker_mask(w, self.num_workers))
            for w in range(self.num_workers)
        ]
        while True:
            # Replicate the round's draws: advances the parent RNG in
            # lockstep with every worker and feeds cross-arc telemetry.
            actives, partners = draw_partners(
                ov._nbr_indptr,
                ov._nbr_indices,
                ov.joined,
                rng,
                cfg.exchanges_per_round,
            )
            if actives.size:
                self._count_cross(
                    plan,
                    (
                        np.repeat(actives, cfg.exchanges_per_round),
                        partners.reshape(-1),
                    ),
                )
            frames = []
            t0 = time.perf_counter()
            for conn in conns:
                data = conn.recv_bytes()
                self._meter(data, "plan")
                frames.append(decode(data))
            wait = time.perf_counter() - t0
            self.barrier_wait += wait
            self._m_wait.observe(wait)
            pending = ov.ids.copy()
            all_plans = []
            for w, frame in enumerate(frames):
                pending[owned_idx[w]] = frame.pending
                all_plans.extend(frame.plans)
            all_plans.sort(key=lambda t: t[0])
            final = dedup_ids(pending)
            changed_idx = np.flatnonzero(ov.ids != final)
            changed_vals = final[changed_idx]
            changed = apply_plan_log(ov, all_plans)
            moves = publish_ids(
                ov, changed_idx, changed_vals, cfg.movement_tolerance
            )
            ov._round_no += 1
            stop = self._end_round(moves, len(changed))
            checkpoint = None
            state = None
            if self._should_checkpoint(stop):
                state = capture_build_state(ov, plan, rng, self.num_workers)
                gen = generation_dir(self.checkpoint_dir, ov._round_no)
                os.makedirs(gen, exist_ok=True)
                checkpoint = (gen, snapshot_id(state))
            bf = encode(
                BarrierFrame(
                    ov._round_no, all_plans, changed_idx, changed_vals, stop, checkpoint
                )
            )
            for conn in conns:
                conn.send_bytes(bf)
                self._meter(bf, "barrier")
            if checkpoint is not None:
                for conn in conns:
                    data = conn.recv_bytes()
                    self._meter(data, "checkpoint_ack")
                    decode(data)
                # Every arc is durably on disk: the parent record lands
                # last, completing the generation.
                write_build_record(checkpoint[0], state)
                prune_generations(self.checkpoint_dir)
                self.checkpoints += 1
                self._m_ckpt.inc()
            if stop:
                self._gather_arcs()
                return

    def _gather_arcs(self) -> None:
        """Stop barrier: pull every worker's heavy state back in."""
        ov = self.overlay
        rss = []
        for conn in self._conns:
            data = conn.recv_bytes()
            self._meter(data, "arc")
            frame = decode(data)
            for v, payload in frame.peers:
                peer = ov.peers[int(v)]
                _restore_peer(peer, payload)
                peer.lsh_family = ov.lsh_family_for(peer.node)
                peer.k_buckets = ov.k_links
            rss.append(int(frame.peak_rss_kb))
        self.worker_peak_rss = rss
        for p in self._procs:
            p.join(timeout=30)
        self._teardown()
