"""Self-healing sweep: partition merge speed and catch-up availability.

Beyond the paper's evaluation. A :class:`~repro.net.faults.RingPartition`
cuts the identifier ring in half for its whole window; each side's
stabilizer re-closes its own arc, so at heal time the overlay is two
internally consistent rings. The sweep measures, per successor-list
length ``r`` and per system (SELECT vs Symphony):

* **heal rounds** — stabilization rounds after the cut ends until the
  :mod:`~repro.overlay.doctor` sees one consistent ring again (capped;
  a row at the cap did not converge);
* **partition availability** — plain delivery ratio for notifications
  published *during* the cut (cross-cut subscribers are unreachable);
* **post-heal availability** — delivery ratio for the same publishers
  once the ring has been given its healing rounds;
* **total availability** — including the missed notifications that the
  catch-up buffers handed over after the cut healed.

SELECT's identifiers are socially clustered and its peers know their
neighborhood through gossip, so boundary peers re-adopt their true
cross-cut successors almost immediately; Symphony peers only have the
``successor.predecessor`` walk and harmonic long links, which is the
contrast this sweep quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.core.stabilize import CatchUpStore, Stabilizer
from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.healing import stabilize_until_healed
from repro.net.faults import FaultPlan, PingService, RingPartition
from repro.pubsub.api import PubSubSystem
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report", "R_VALUES", "PARTITION_END", "MAX_HEAL_ROUNDS"]

#: successor-list lengths swept by default.
R_VALUES = (1, 2, 3, 5)

_SYSTEMS = ("select", "symphony")

#: simulation time at which the injected partition heals.
PARTITION_END = 600.0

#: stabilization-round budget after the heal; a non-converged run reports
#: this cap as its heal time.
MAX_HEAL_ROUNDS = 12

#: fraction of peers that crash right when the partition heals — the
#: worst-case correlated failure the successor lists are for. With
#: ``r = 1`` a peer whose successor crashed has no backup and must
#: rediscover its arc from long links alone.
CRASH_FRACTION = 0.10


def _snapshot(overlay):
    """Ring state of every table (the stabilizer mutates it in place)."""
    return [
        (t.predecessor, t.successor, list(t.successors)) for t in overlay.tables
    ]


def _restore(overlay, snapshot) -> None:
    for table, (pred, succ, successors) in zip(overlay.tables, snapshot):
        table.predecessor = pred
        table.successor = succ
        table.successors = list(successors)


def _publish_all(pubsub, publishers, time: float, online=None) -> "tuple[int, int]":
    """(subscribers wanted, subscribers reached) over one publish wave."""
    wanted = 0
    reached = 0
    for publisher in publishers:
        publisher = int(publisher)
        if online is not None and not online[publisher]:
            continue  # offline users do not post
        result = pubsub.publish(publisher, online=online, time=time)
        wanted += len(result.subscribers)
        reached += len(result.delivered)
    return wanted, reached


def run(
    config: ExperimentConfig,
    r_values: "tuple[int, ...]" = R_VALUES,
) -> list[dict]:
    """Heal time and availability per dataset × system × successor-list r."""
    rows = []
    rngs = trial_rngs(config, "stabilize")
    for dataset in config.datasets:
        for system in _SYSTEMS:
            if system not in config.systems:
                continue
            per_r: dict[int, dict[str, list]] = {
                r: {
                    "heal_rounds": [],
                    "converged": [],
                    "partition_avail": [],
                    "post_heal_avail": [],
                    "total_avail": [],
                    "evictions": [],
                }
                for r in r_values
            }
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                overlay = build_system(config, system, graph, trial)
                baseline = _snapshot(overlay)
                # Cut at the id median so the partition splits the
                # population roughly in half.
                median = float(np.median(overlay.ids))
                cut = (median, (median + 0.5) % 1.0)
                publishers = rngs[trial].choice(
                    graph.num_nodes, size=min(config.publishers, graph.num_nodes),
                    replace=False,
                )
                crashed = rngs[trial].choice(
                    graph.num_nodes,
                    size=int(CRASH_FRACTION * graph.num_nodes),
                    replace=False,
                )
                for r in r_values:
                    _restore(overlay, baseline)
                    plan = FaultPlan(
                        partitions=[RingPartition(cut=cut, start=0.0, end=PARTITION_END)],
                        seed=config.seed + trial,
                    )
                    stabilizer = Stabilizer(overlay, PingService(plan), list_length=r)
                    catchup = CatchUpStore(overlay, faults=plan)
                    pubsub = PubSubSystem(overlay, faults=plan, catchup=catchup)
                    # Phase 1 — the cut is active: each side stabilizes
                    # itself, publishes lose their cross-cut subscribers
                    # (the misses land in the catch-up buffers).
                    online = np.ones(graph.num_nodes, dtype=bool)
                    for _ in range(3):
                        stabilizer.round(online, time=100.0)
                    wanted_cut, reached_cut = _publish_all(pubsub, publishers, time=100.0)
                    # Phase 2 — the cut heals and CRASH_FRACTION of the
                    # peers crash at the same instant: merge the two rings
                    # around the fresh holes.
                    surviving = online.copy()
                    surviving[crashed] = False
                    healing = stabilize_until_healed(
                        overlay,
                        stabilizer,
                        surviving,
                        time=PARTITION_END + 10.0,
                        max_rounds=MAX_HEAL_ROUNDS,
                        catchup=catchup,
                    )
                    heal_rounds = healing.rounds_to_heal or MAX_HEAL_ROUNDS
                    # Phase 3 — publish the same wave post-heal.
                    wanted_post, reached_post = _publish_all(
                        pubsub, publishers, time=PARTITION_END + 20.0, online=surviving
                    )
                    catchup.deliver(surviving, time=PARTITION_END + 20.0)
                    # Phase 4 — the crashed peers return; the buffers hand
                    # them everything they slept through.
                    catchup.deliver(online, time=PARTITION_END + 120.0)
                    wanted = wanted_cut + wanted_post
                    got = reached_cut + reached_post + catchup.stats.recovered
                    bucket = per_r[r]
                    bucket["heal_rounds"].append(heal_rounds)
                    bucket["converged"].append(1.0 if healing.converged else 0.0)
                    bucket["partition_avail"].append(
                        reached_cut / wanted_cut if wanted_cut else 1.0
                    )
                    bucket["post_heal_avail"].append(
                        reached_post / wanted_post if wanted_post else 1.0
                    )
                    bucket["total_avail"].append(min(1.0, got / wanted) if wanted else 1.0)
                    bucket["evictions"].append(catchup.stats.evictions)
            for r in r_values:
                bucket = per_r[r]
                rows.append(
                    {
                        "dataset": dataset,
                        "system": system,
                        "r": r,
                        "heal_rounds": summarize(bucket["heal_rounds"]).mean,
                        "converged": summarize(bucket["converged"]).mean,
                        "partition_availability": summarize(bucket["partition_avail"]).mean,
                        "post_heal_availability": summarize(bucket["post_heal_avail"]).mean,
                        "total_availability": summarize(bucket["total_avail"]).mean,
                        "catchup_evictions": summarize(bucket["evictions"]).mean,
                    }
                )
    return rows


def report(
    config: ExperimentConfig,
    r_values: "tuple[int, ...]" = R_VALUES,
) -> str:
    """Render the self-healing sweep table."""
    rows = run(config, r_values=r_values)
    return format_table(
        headers=[
            "Dataset",
            "System",
            "r",
            "Heal rounds",
            "Avail (cut)",
            "Avail (post-heal)",
            "Avail (total)",
            "Evictions",
        ],
        rows=[
            (
                r["dataset"],
                pretty(r["system"]),
                r["r"],
                r["heal_rounds"],
                r["partition_availability"],
                r["post_heal_availability"],
                r["total_availability"],
                r["catchup_evictions"],
            )
            for r in rows
        ],
        title=(
            "Self-healing sweep: ring-merge speed and catch-up availability "
            f"(partition heals at t={PARTITION_END:.0f}, round cap {MAX_HEAL_ROUNDS})"
        ),
    )
