"""Figure 6 — communication availability under churn.

The paper's Figure 6 plots, per dataset, the node churn (dash line) and
SELECT's data availability (continuous line) over a long run in which
peers join/leave every tick but at least half the network stays online.
SELECT's CMA+LSH recovery replaces chronically offline contacts and
re-stitches the ring, keeping availability at 100%.

We reproduce that series and add the mechanism's ablation: the same
overlay with recovery disabled forwards blindly on stale tables and loses
messages, showing the recovery is what earns the flat 100% line.
"""

from __future__ import annotations

import numpy as np

from repro.core.recovery import RecoveryManager
from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    trial_rngs,
)
from repro.metrics.availability import churn_availability
from repro.net.churn import ChurnModel
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report"]

_VARIANTS = (
    ("SELECT (recovery)", True),
    ("SELECT (no recovery)", False),
)


def run(config: ExperimentConfig, ticks: int = 12, horizon: float = 3600.0) -> list[dict]:
    """Per-dataset availability under churn, with and without recovery."""
    rows = []
    rngs = trial_rngs(config, "fig6")
    for dataset in config.datasets:
        for label, with_recovery in _VARIANTS:
            mean_avail = []
            min_avail = []
            churn_level = []
            series_acc = np.zeros(ticks, dtype=np.float64)
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                overlay = build_system(config, "select", graph, trial)
                churn = ChurnModel(graph.num_nodes, seed=rngs[trial])
                matrix = churn.online_matrix(horizon, ticks)
                repair = RecoveryManager(overlay).tick if with_recovery else None
                points = churn_availability(
                    overlay,
                    matrix,
                    lookups_per_tick=max(10, config.lookups // ticks),
                    repair=repair,
                    seed=rngs[trial],
                )
                avail = np.array([p.availability for p in points])
                series_acc += avail
                mean_avail.append(float(avail.mean()))
                min_avail.append(float(avail.min()))
                churn_level.append(1.0 - float(np.mean([p.online_fraction for p in points])))
            rows.append(
                {
                    "dataset": dataset,
                    "variant": label,
                    "mean_availability": summarize(mean_avail).mean,
                    "min_availability": summarize(min_avail).mean,
                    "churn_level": summarize(churn_level).mean,
                    "availability_series": list(series_acc / config.trials),
                }
            )
    return rows


def report(config: ExperimentConfig, ticks: int = 12, horizon: float = 3600.0) -> str:
    """Render the Figure 6 series summary."""
    rows = run(config, ticks=ticks, horizon=horizon)
    return format_table(
        headers=["Dataset", "Variant", "Availability", "Worst tick", "Node churn"],
        rows=[
            (
                r["dataset"],
                r["variant"],
                r["mean_availability"],
                r["min_availability"],
                r["churn_level"],
            )
            for r in rows
        ],
        title="Figure 6: data availability under churn (dash line = churn level)",
    )
