"""Figure 5 — iterations to construct the overlay.

Only the iterative systems participate (Symphony and Bayeux draw their
links in one shot and are excluded, as in the paper). SELECT starts from
the social graph (its bootstrap links are already right) while Vitis and
OMen must *discover* their partners by sampling the whole network — the
paper reports SELECT converging in ~75% fewer iterations.
"""

from __future__ import annotations

from repro.baselines.registry import system_names
from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
)
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig) -> list[dict]:
    """Measure construction iterations for every dataset × iterative system."""
    rows = []
    iterative = [s for s in config.systems if s in system_names(iterative_only=True)]
    for dataset in config.datasets:
        for system in iterative:
            iterations = []
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                overlay = build_system(config, system, graph, trial)
                iterations.append(float(overlay.iterations))
            stats = summarize(iterations)
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "iterations": stats.mean,
                    "ci95": stats.ci95,
                }
            )
    return rows


def report(config: ExperimentConfig) -> str:
    """Render Figure 5 plus SELECT's convergence advantage."""
    rows = run(config)
    out = format_table(
        headers=["Dataset", "System", "Iterations", "±95%"],
        rows=[(r["dataset"], pretty(r["system"]), r["iterations"], r["ci95"]) for r in rows],
        title="Figure 5: iterations to construct the overlay (Symphony/Bayeux excluded)",
    )
    lines = [out, "", "SELECT convergence advantage:"]
    for dataset in config.datasets:
        at = {r["system"]: r["iterations"] for r in rows if r["dataset"] == dataset}
        if "select" not in at:
            continue
        sel = at["select"]
        others = {s: v for s, v in at.items() if s != "select" and v > 0}
        if not others:
            continue
        worst = max(others.values())
        lines.append(f"  {dataset}: {100 * (1 - sel / worst):.0f}% fewer iterations than the slowest baseline")
    return "\n".join(lines)
