"""Figure 4 — messages forwarded per social degree (load balance).

For each dataset × system, many notifications are published and each
peer's share of forwarded messages is accumulated. Figure 4 plots the
share against peers' social degree: Symphony/Bayeux funnel traffic into
whatever peers the DHT picks, Vitis/OMen into high-degree hubs; SELECT
spreads it. We report the per-degree-bin series plus a scalar Gini
coefficient per system (0 = perfectly balanced).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.load import forward_counts, load_gini, load_share_by_degree
from repro.pubsub.api import PubSubSystem
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig, num_bins: int = 6) -> list[dict]:
    """Measure the load-vs-degree series for every dataset × system."""
    rows = []
    rngs = trial_rngs(config, "fig4")
    for dataset in config.datasets:
        for system in config.systems:
            ginis = []
            totals = []
            max_shares = []
            series_acc: "np.ndarray | None" = None
            degrees_acc: "np.ndarray | None" = None
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                overlay = build_system(config, system, graph, trial)
                pubsub = PubSubSystem(overlay)
                publishers = rngs[trial].integers(0, graph.num_nodes, size=config.publishers)
                counts = forward_counts(pubsub, publishers)
                ginis.append(load_gini(counts))
                totals.append(float(counts.sum()))
                total = counts.sum()
                max_shares.append(100.0 * counts.max() / total if total else 0.0)
                series = load_share_by_degree(graph, counts, num_bins=num_bins)
                deg = np.array([d for d, _ in series])
                share = np.array([s for _, s in series])
                if series_acc is None:
                    series_acc = share
                    degrees_acc = deg
                else:
                    m = min(len(series_acc), len(share))
                    series_acc = series_acc[:m] + share[:m]
                    degrees_acc = degrees_acc[:m] + deg[:m]
            share_mean = series_acc / config.trials
            degree_mean = degrees_acc / config.trials
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "gini": summarize(ginis).mean,
                    "total_forwards": summarize(totals).mean,
                    "max_peer_share": summarize(max_shares).mean,
                    "degree_bins": [float(d) for d in degree_mean],
                    "share_percent": [float(s) for s in share_mean],
                    "top_bin_share": float(share_mean[-1]),
                }
            )
    return rows


def report(config: ExperimentConfig, num_bins: int = 6) -> str:
    """Render Figure 4: per-bin shares and the balance summary."""
    rows = run(config, num_bins=num_bins)
    table_rows = []
    for r in rows:
        series = " ".join(
            f"{d:.0f}:{s:.1f}%" for d, s in zip(r["degree_bins"], r["share_percent"])
        )
        table_rows.append(
            (
                r["dataset"],
                pretty(r["system"]),
                r["total_forwards"],
                r["top_bin_share"],
                r["max_peer_share"],
                series,
            )
        )
    out = format_table(
        headers=[
            "Dataset",
            "System",
            "Total forwards",
            "Top-degree-bin %",
            "Max peer %",
            "degree:share series",
        ],
        rows=table_rows,
        title="Figure 4: forwarded-message share per social degree (publisher's own sends excluded)",
        float_fmt="{:.1f}",
    )
    lines = [out, "", "SELECT forwarding-load reduction (total forwards imposed on peers):"]
    for dataset in config.datasets:
        at = {r["system"]: r["total_forwards"] for r in rows if r["dataset"] == dataset}
        if "select" not in at:
            continue
        sel = at["select"]
        others = {s: v for s, v in at.items() if s != "select" and v > 0}
        if not others:
            continue
        best = min(others.values())
        worst = max(others.values())
        lines.append(
            f"  {dataset}: vs best baseline {100 * (1 - sel / best):.0f}%, vs worst {100 * (1 - sel / worst):.0f}%"
        )
    return "\n".join(lines)
