"""Figure 2 — average hops per social lookup vs network size.

Per dataset, the network grows through a set of sizes; at each size every
system's overlay is built and the mean hop count of publisher→subscriber
lookups measured. The paper reports SELECT at 75–85% fewer hops than
Symphony and 41–65% fewer than the best state of the art.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.hops import sample_friend_pairs, social_lookup_hops
from repro.pubsub.api import PubSubSystem
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report", "growth_sizes"]


def growth_sizes(config: ExperimentConfig, points: int = 3) -> list[int]:
    """The growing network sizes on Figure 2's x-axis."""
    fractions = np.linspace(0.4, 1.0, points)
    return sorted({max(32, int(round(config.num_nodes * f))) for f in fractions})


def run(config: ExperimentConfig, points: int = 3) -> list[dict]:
    """Measure mean lookup hops for every dataset × system × size."""
    rows = []
    sizes = growth_sizes(config, points)
    rngs = trial_rngs(config, "fig2")
    for dataset in config.datasets:
        for size in sizes:
            for system in config.systems:
                samples = []
                for trial in range(config.trials):
                    graph = dataset_graph(config, dataset, trial, num_nodes=size)
                    overlay = build_system(config, system, graph, trial)
                    pubsub = PubSubSystem(overlay)
                    pairs = sample_friend_pairs(graph, config.lookups, seed=rngs[trial])
                    hops = social_lookup_hops(pubsub, pairs)
                    if hops.size:
                        samples.append(float(hops.mean()))
                stats = summarize(samples)
                rows.append(
                    {
                        "dataset": dataset,
                        "system": system,
                        "size": size,
                        "hops": stats.mean,
                        "ci95": stats.ci95,
                    }
                )
    return rows


def report(config: ExperimentConfig, points: int = 3) -> str:
    """Render the Figure 2 series plus SELECT's reduction percentages."""
    rows = run(config, points)
    table_rows = []
    for r in rows:
        table_rows.append((r["dataset"], pretty(r["system"]), r["size"], r["hops"], r["ci95"]))
    out = format_table(
        headers=["Dataset", "System", "N", "Avg hops", "±95%"],
        rows=table_rows,
        title="Figure 2: hops per social lookup",
    )
    # Reduction summary at the largest size, as the paper quotes it.
    largest = max(r["size"] for r in rows)
    lines = [out, "", "SELECT hop reduction at largest N:"]
    for dataset in config.datasets:
        at = {r["system"]: r["hops"] for r in rows if r["dataset"] == dataset and r["size"] == largest}
        if "select" not in at:
            continue
        sel = at["select"]
        others = {s: h for s, h in at.items() if s != "select" and h > 0}
        if not others:
            continue
        best_sota = min(others.values())
        sym = others.get("symphony")
        parts = [f"vs best SOTA {100 * (1 - sel / best_sota):.0f}%"]
        if sym:
            parts.insert(0, f"vs Symphony {100 * (1 - sel / sym):.0f}%")
        lines.append(f"  {dataset}: " + ", ".join(parts))
    return "\n".join(lines)
