"""Experiment harness: one module per table/figure of the paper.

===================  =============================================
Paper artifact       Module
===================  =============================================
Table II             :mod:`repro.experiments.table2`
§IV-C link sweep     :mod:`repro.experiments.conn_sweep`
Figure 2 (hops)      :mod:`repro.experiments.fig2_hops`
Figure 3 (relays)    :mod:`repro.experiments.fig3_relays`
Figure 4 (load)      :mod:`repro.experiments.fig4_load`
Figure 5 (iters)     :mod:`repro.experiments.fig5_iterations`
Figure 6 (churn)     :mod:`repro.experiments.fig6_churn`
Figure 7 (latency)   :mod:`repro.experiments.fig7_latency`
Figure 8 (ids)       :mod:`repro.experiments.fig8_ids`
Fault sweep (ours)   :mod:`repro.experiments.faults`
Self-healing (ours)  :mod:`repro.experiments.stabilize`
Doctor audit (ours)  :mod:`repro.experiments.doctor`
===================  =============================================

Every module exposes ``run(config) -> list[dict]`` (raw rows) and
``report(config) -> str`` (the formatted table the paper's artifact
corresponds to). ``repro.experiments.cli`` wires them to a command line:
``select-repro fig3 --preset quick``.
"""

from repro.experiments.common import ExperimentConfig

__all__ = ["ExperimentConfig"]
