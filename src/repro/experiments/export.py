"""Export experiment rows to CSV/JSON for plotting.

Every experiment's ``run()`` returns a list of flat-ish dicts; these
helpers serialize them so the figures can be re-plotted with any tool
(the paper's figures are line/bar charts over exactly these series).
List-valued fields (histograms, per-bin series) are JSON-encoded inside
the CSV cell so nothing is lost.
"""

from __future__ import annotations

import csv
import json
import os

from repro.util.exceptions import ConfigurationError

__all__ = ["rows_to_csv", "rows_to_json", "export_experiment"]


def _flatten(value):
    if isinstance(value, (list, tuple, dict)):
        return json.dumps(value)
    return value


def rows_to_csv(rows: list[dict], path: str) -> str:
    """Write experiment rows to ``path`` as CSV; returns the path."""
    if not rows:
        raise ConfigurationError("no rows to export")
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: _flatten(v) for k, v in row.items()})
    return path


def rows_to_json(rows: list[dict], path: str) -> str:
    """Write experiment rows to ``path`` as a JSON array; returns the path."""
    if not rows:
        raise ConfigurationError("no rows to export")
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(rows, fh, indent=2, default=float)
        fh.write("\n")
    return path


def export_experiment(name: str, module, config, out_dir: str, fmt: str = "csv") -> str:
    """Run one experiment module and export its rows.

    ``module`` must expose ``run(config) -> list[dict]`` (every module in
    :mod:`repro.experiments` does).
    """
    if fmt not in ("csv", "json"):
        raise ConfigurationError(f"unknown export format {fmt!r}")
    rows = module.run(config)
    path = os.path.join(out_dir, f"{name}.{fmt}")
    if fmt == "csv":
        return rows_to_csv(rows, path)
    return rows_to_json(rows, path)
