"""Figure 7 — dissemination latency (realistic experiments).

Every peer gets heterogeneous upload/download bandwidth and coordinate
latency; publishers push 1.2 MB notifications through their dissemination
trees, with each forwarder's upload shared across its simultaneous
transfers. The paper contrasts the unstructured "random" overlay (latency
explodes with fan-out) against SELECT's small linear growth, alongside
the four baselines.

Also includes the §IV-D probe: a central peer pushing one fragment to a
growing number of simultaneous connections shows the *linear* growth in
total transfer time that motivates the latency-aware overlay.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.latency import dissemination_latencies
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import LatencyModel
from repro.net.transfer import DEFAULT_PAYLOAD_MB, fanout_transfer_time
from repro.pubsub.api import PubSubSystem
from repro.util.rng import RngStream
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report", "simultaneous_transfer_probe"]


def simultaneous_transfer_probe(
    upload_mbps: float = 10.0,
    download_mbps: float = 100.0,
    fanouts=(1, 2, 4, 8, 16, 32),
    size_mb: float = DEFAULT_PAYLOAD_MB,
) -> list[dict]:
    """§IV-D probe: total time to serve N simultaneous 1.2 MB transfers."""
    rows = []
    for f in fanouts:
        total_ms = fanout_transfer_time(size_mb, upload_mbps, download_mbps, fanout=f)
        rows.append({"connections": f, "total_ms": total_ms})
    return rows


def run(config: ExperimentConfig) -> list[dict]:
    """Dissemination latency for every dataset × system (plus 'random')."""
    systems = list(config.systems)
    if "random" not in systems:
        systems.append("random")
    rows = []
    rngs = trial_rngs(config, "fig7")
    stream = RngStream(config.seed)
    for dataset in config.datasets:
        for system in systems:
            latencies = []
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                env_rng = stream.child(f"fig7-env:{dataset}:{trial}")
                bandwidth = BandwidthModel(graph.num_nodes, seed=env_rng)
                latency = LatencyModel(graph.num_nodes, seed=env_rng)
                kwargs = {}
                if system == "select":
                    kwargs["bandwidth"] = bandwidth  # SELECT's picker is latency-aware
                overlay = build_system(config, system, graph, trial, **kwargs)
                pubsub = PubSubSystem(overlay)
                publishers = rngs[trial].integers(0, graph.num_nodes, size=config.publishers)
                times = dissemination_latencies(pubsub, publishers, bandwidth, latency)
                if times.size:
                    latencies.append(float(times.mean()))
            stats = summarize(latencies)
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "latency_ms": stats.mean,
                    "ci95": stats.ci95,
                }
            )
    return rows


def report(config: ExperimentConfig) -> str:
    """Render Figure 7 plus the simultaneous-transfer probe."""
    rows = run(config)
    out = format_table(
        headers=["Dataset", "System", "Dissemination latency (ms)", "±95%"],
        rows=[(r["dataset"], pretty(r["system"]), r["latency_ms"], r["ci95"]) for r in rows],
        title="Figure 7: average dissemination latency (1.2 MB payloads)",
        float_fmt="{:.0f}",
    )
    probe = simultaneous_transfer_probe()
    probe_table = format_table(
        headers=["Simultaneous connections", "Total transfer time (ms)"],
        rows=[(r["connections"], r["total_ms"]) for r in probe],
        title="§IV-D probe: simultaneous transfers from one peer grow linearly",
        float_fmt="{:.0f}",
    )
    return out + "\n\n" + probe_table
