"""Figure 3 — relay nodes per pub/sub routing path.

For each dataset × system, publishers post notifications and we count
relay nodes (on-path non-subscribers) per publisher→subscriber path and
distinct relays per dissemination tree. The paper reports SELECT at >98%
fewer relays than all four baselines (headline: up to 89% fewer vs the
state of the art across settings).
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.relays import publish_relays
from repro.pubsub.api import PubSubSystem
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig) -> list[dict]:
    """Measure relay counts for every dataset × system."""
    rows = []
    rngs = trial_rngs(config, "fig3")
    for dataset in config.datasets:
        for system in config.systems:
            per_path = []
            per_tree = []
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                overlay = build_system(config, system, graph, trial)
                pubsub = PubSubSystem(overlay)
                publishers = rngs[trial].integers(0, graph.num_nodes, size=config.publishers)
                stats = publish_relays(pubsub, publishers)
                per_path.append(stats.mean_per_path)
                per_tree.append(stats.mean_per_tree)
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "relays_per_path": summarize(per_path).mean,
                    "relays_per_tree": summarize(per_tree).mean,
                    "ci95": summarize(per_path).ci95,
                }
            )
    return rows


def report(config: ExperimentConfig) -> str:
    """Render Figure 3's numbers plus SELECT's reduction percentages."""
    rows = run(config)
    out = format_table(
        headers=["Dataset", "System", "Relays/path", "±95%", "Relays/tree"],
        rows=[
            (r["dataset"], pretty(r["system"]), r["relays_per_path"], r["ci95"], r["relays_per_tree"])
            for r in rows
        ],
        title="Figure 3: relay nodes per pub/sub routing path",
    )
    lines = [out, "", "SELECT relay reduction:"]
    for dataset in config.datasets:
        at = {r["system"]: r["relays_per_path"] for r in rows if r["dataset"] == dataset}
        if "select" not in at:
            continue
        sel = at["select"]
        others = {s: v for s, v in at.items() if s != "select" and v > 0}
        if not others:
            continue
        best = min(others.values())
        worst = max(others.values())
        lines.append(
            f"  {dataset}: vs best SOTA {100 * (1 - sel / best):.0f}%, vs worst {100 * (1 - sel / worst):.0f}%"
        )
    return "\n".join(lines)
