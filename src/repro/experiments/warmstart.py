"""Warm-started sweeps from a converged snapshot: ``select-repro warmstart``.

SELECT's convergence phase dominates experiment wall-clock (Figure 5:
gossip rounds until quiescence), and the overlay is a long-lived
structure in deployment — so sweeps should amortize convergence by
reusing a converged snapshot instead of rebuilding per trial. This
experiment measures exactly that trade: per trial, a cold ``build()``
(projection + gossip rounds) against a warm :func:`repro.persist.restore`
of the same converged state, verifying with the overlay doctor that the
restored overlay is as healthy as the built one and that the round
counter continues from the manifest instead of restarting at zero.

With ``--resume PATH`` (``ExperimentConfig.resume_from``) the snapshot is
loaded from disk — the workflow ``select-repro snapshot DIR`` +
``select-repro warmstart --resume DIR`` skips every re-convergence.
Without it, the snapshot is captured in memory from trial 0's build.
"""

from __future__ import annotations

import time

from repro.experiments.common import ExperimentConfig, build_system, dataset_graph
from repro.overlay.doctor import check_overlay
from repro.persist import load, restore
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig) -> list[dict]:
    """Cold-build vs warm-restore timings over ``config.trials`` trials.

    One shared graph (first dataset, trial 0): a snapshot is only
    restorable onto the graph it was captured on, which is precisely the
    amortize-one-convergence-across-a-sweep workflow.
    """
    dataset = config.datasets[0]
    if config.resume_from:
        snapshot = load(config.resume_from)
        graph = None  # embedded in the snapshot
    else:
        graph = dataset_graph(config, dataset, 0)
        snapshot = build_system(config, "select", graph, 0).snapshot()
    manifest = snapshot["manifest"]
    cold_graph = graph if graph is not None else restore(snapshot).graph
    rows = []
    for trial in range(config.trials):
        t0 = time.perf_counter()
        cold = build_system(config, "select", cold_graph, trial)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = restore(snapshot)
        warm_s = time.perf_counter() - t0
        doc = check_overlay(warm)
        rows.append(
            {
                "trial": trial,
                "dataset": manifest["graph"]["name"],
                "cold_s": cold_s,
                "cold_rounds": cold.iterations,
                "warm_s": warm_s,
                "warm_round": warm.iterations,
                "manifest_round": manifest["round"],
                "snapshot_id": manifest["snapshot_id"],
                "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
                "doctor_ok": doc.ok,
            }
        )
    return rows


def report(config: ExperimentConfig) -> str:
    """Render the cold-vs-warm table."""
    rows = run(config)
    table = format_table(
        headers=[
            "Trial",
            "Dataset",
            "Cold build (s)",
            "Cold rounds",
            "Warm restore (s)",
            "Resumes at round",
            "Speedup",
            "Doctor",
        ],
        rows=[
            (
                r["trial"],
                r["dataset"],
                f"{r['cold_s']:.3f}",
                r["cold_rounds"],
                f"{r['warm_s']:.3f}",
                r["warm_round"],
                f"{r['speedup']:.1f}x",
                "OK" if r["doctor_ok"] else "VIOLATION",
            )
            for r in rows
        ],
        title="Warm start: converged-snapshot restore vs cold re-convergence",
    )
    first = rows[0]
    lines = [
        table,
        f"snapshot {first['snapshot_id']}: round counter resumes at "
        f"{first['manifest_round']} (cold builds re-converge from round 0)",
    ]
    bad = sum(1 for r in rows if not r["doctor_ok"])
    if bad:
        lines.append(f"{bad} restored overlay(s) violate doctor invariants")
    return "\n".join(lines)
