"""Ablation study: which SELECT mechanism buys which result.

DESIGN.md calls out four load-bearing design choices; each variant
disables exactly one of them:

* ``no-reassign`` — Algorithm 2 off: peers keep their projection ids.
* ``no-lsh``      — Algorithm 5's LSH bucketing replaced by random
  friend links.
* ``no-lookahead`` — routing without the Symphony-style ``L_p``.
* ``no-recovery`` — §III-F off (measured on churn availability).

The full system is measured alongside for reference.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SelectConfig
from repro.core.recovery import RecoveryManager
from repro.core.select import SelectOverlay
from repro.experiments.common import ExperimentConfig, dataset_graph, trial_rngs
from repro.metrics.availability import churn_availability
from repro.metrics.hops import sample_friend_pairs, social_lookup_hops
from repro.metrics.relays import publish_relays
from repro.net.churn import ChurnModel
from repro.pubsub.api import PubSubSystem
from repro.util.rng import RngStream
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["VARIANTS", "run", "report"]

VARIANTS = ("full", "no-reassign", "no-lsh", "no-lookahead", "no-recovery")


def _config_for(variant: str) -> SelectConfig:
    if variant == "no-reassign":
        return SelectConfig(reassign_ids=False)
    if variant == "no-lsh":
        return SelectConfig(use_lsh=False)
    return SelectConfig()


def run(config: ExperimentConfig, dataset: "str | None" = None, churn_ticks: int = 6) -> list[dict]:
    """Measure every variant on one dataset."""
    dataset = dataset or config.datasets[0]
    rows = []
    rngs = trial_rngs(config, "ablation")
    stream = RngStream(config.seed)
    for variant in VARIANTS:
        hops_s, relays_s, iters_s, avail_s = [], [], [], []
        for trial in range(config.trials):
            graph = dataset_graph(config, dataset, trial)
            overlay = SelectOverlay(
                graph, k_links=config.k_links, config=_config_for(variant)
            ).build(seed=stream.child(f"ablation:{variant}:{trial}"))
            lookahead = variant != "no-lookahead"
            pubsub = PubSubSystem(overlay, lookahead=lookahead)
            pairs = sample_friend_pairs(graph, config.lookups, seed=rngs[trial])
            hops = social_lookup_hops(pubsub, pairs)
            hops_s.append(float(hops.mean()))
            publishers = rngs[trial].integers(0, graph.num_nodes, size=config.publishers)
            relays_s.append(publish_relays(pubsub, publishers).mean_per_path)
            iters_s.append(float(overlay.iterations))
            churn = ChurnModel(graph.num_nodes, seed=rngs[trial])
            matrix = churn.online_matrix(2000.0, churn_ticks)
            repair = None if variant == "no-recovery" else RecoveryManager(overlay).tick
            points = churn_availability(
                overlay, matrix, lookups_per_tick=20, repair=repair, seed=rngs[trial]
            )
            avail_s.append(float(np.mean([p.availability for p in points])))
        rows.append(
            {
                "dataset": dataset,
                "variant": variant,
                "hops": summarize(hops_s).mean,
                "relays_per_path": summarize(relays_s).mean,
                "iterations": summarize(iters_s).mean,
                "availability": summarize(avail_s).mean,
            }
        )
    return rows


def report(config: ExperimentConfig, dataset: "str | None" = None) -> str:
    """Render the ablation table."""
    rows = run(config, dataset=dataset)
    return format_table(
        headers=["Variant", "Hops", "Relays/path", "Iterations", "Availability"],
        rows=[
            (r["variant"], r["hops"], r["relays_per_path"], r["iterations"], r["availability"])
            for r in rows
        ],
        title=f"Ablation on {rows[0]['dataset']}: each SELECT mechanism disabled in turn",
    )
