"""Overlay invariant audit: ``select-repro doctor``.

Builds every configured system on every configured dataset and runs the
:mod:`repro.overlay.doctor` sweep over the result: ring connectivity,
successor/predecessor symmetry, and the ``K`` incoming-link cap. A
healthy build reports OK on every row; anything else names the invariant
that broke, which is the first thing to check when an experiment
misbehaves after an overlay-construction change.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
)
from repro.overlay.doctor import check_overlay
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig) -> list[dict]:
    """Invariant sweep per dataset × system (trial 0's build)."""
    rows = []
    for dataset in config.datasets:
        for system in config.systems:
            graph = dataset_graph(config, dataset, 0)
            overlay = build_system(config, system, graph, 0)
            doc = check_overlay(overlay)
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "peers": doc.live_peers,
                    "ring_cycles": doc.ring_count,
                    "largest_cycle": doc.largest_cycle,
                    "broken_successors": len(doc.broken_successors),
                    "asymmetric_pairs": len(doc.asymmetric_pairs),
                    "max_in_degree": doc.max_in_degree,
                    "in_degree_cap": doc.in_degree_cap,
                    "ok": doc.ok,
                }
            )
    return rows


def report(config: ExperimentConfig) -> str:
    """Render the audit table."""
    rows = run(config)
    table = format_table(
        headers=[
            "Dataset",
            "System",
            "Peers",
            "Cycles",
            "Largest",
            "Broken",
            "Asymmetric",
            "In-deg (cap)",
            "Verdict",
        ],
        rows=[
            (
                r["dataset"],
                pretty(r["system"]),
                r["peers"],
                r["ring_cycles"],
                r["largest_cycle"],
                r["broken_successors"],
                r["asymmetric_pairs"],
                f"{r['max_in_degree']} ({r['in_degree_cap']})",
                "OK" if r["ok"] else "VIOLATION",
            )
            for r in rows
        ],
        title="Overlay doctor: ring, symmetry, and in-degree invariants",
    )
    bad = sum(1 for r in rows if not r["ok"])
    verdict = "all overlays healthy" if bad == 0 else f"{bad} overlay(s) violate invariants"
    return f"{table}\n{verdict}"
