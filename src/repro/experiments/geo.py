"""Geographic distribution study (the paper's §V future work).

Peers live in three regions (NA/EU/Asia) whose populations follow the
social graph's community structure — friends co-locate. Because SELECT
links socially connected peers, its overlay links are mostly
*intra-region*, so dissemination rarely pays the 85–160 ms inter-region
penalty; the social-oblivious baselines hop across oceans constantly.

Reported per dataset × system: the fraction of overlay links that stay
inside a region, and the dissemination latency of 1.2 MB notifications
under the geographic latency model.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.latency import dissemination_latencies
from repro.net.bandwidth import BandwidthModel
from repro.net.geo import GeoLatencyModel, social_region_assignment
from repro.pubsub.api import PubSubSystem
from repro.util.rng import RngStream
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report"]


def _overlay_edges(overlay):
    seen = set()
    for v in range(overlay.graph.num_nodes):
        for w in overlay.tables[v].all_links():
            seen.add((min(v, w), max(v, w)))
    return seen


def run(config: ExperimentConfig, num_regions: int = 3) -> list[dict]:
    """Geographic locality + latency for every dataset × system."""
    rows = []
    rngs = trial_rngs(config, "geo")
    stream = RngStream(config.seed)
    for dataset in config.datasets:
        for system in config.systems:
            locality = []
            latency_ms = []
            for trial in range(config.trials):
                graph = dataset_graph(config, dataset, trial)
                env_rng = stream.child(f"geo-env:{dataset}:{trial}")
                regions = social_region_assignment(graph, num_regions, seed=env_rng)
                geo = GeoLatencyModel(graph.num_nodes, region_of=regions, seed=env_rng)
                bandwidth = BandwidthModel(graph.num_nodes, seed=env_rng)
                overlay = build_system(config, system, graph, trial)
                locality.append(geo.intra_region_fraction(_overlay_edges(overlay)))
                pubsub = PubSubSystem(overlay)
                publishers = rngs[trial].integers(0, graph.num_nodes, size=config.publishers)
                times = dissemination_latencies(pubsub, publishers, bandwidth, geo)
                if times.size:
                    latency_ms.append(float(times.mean()))
            rows.append(
                {
                    "dataset": dataset,
                    "system": system,
                    "intra_region_links": summarize(locality).mean,
                    "latency_ms": summarize(latency_ms).mean,
                }
            )
    return rows


def report(config: ExperimentConfig, num_regions: int = 3) -> str:
    """Render the geographic study."""
    rows = run(config, num_regions=num_regions)
    out = format_table(
        headers=["Dataset", "System", "Intra-region links", "Dissemination (ms)"],
        rows=[
            (r["dataset"], pretty(r["system"]), r["intra_region_links"], r["latency_ms"])
            for r in rows
        ],
        title=(
            f"§V geographic study ({num_regions} regions, friends co-locate): "
            "social link selection doubles as geographic locality"
        ),
        float_fmt="{:.2f}",
    )
    lines = [out, "", "SELECT latency advantage from geographic locality:"]
    for dataset in config.datasets:
        at = {r["system"]: r["latency_ms"] for r in rows if r["dataset"] == dataset}
        if "select" not in at or len(at) < 2:
            continue
        others = {s: v for s, v in at.items() if s != "select" and v > 0}
        best = min(others.values())
        lines.append(f"  {dataset}: vs best baseline {100 * (1 - at['select'] / best):.0f}%")
    return "\n".join(lines)
