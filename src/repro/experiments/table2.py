"""Table II — dataset statistics.

Prints the same columns as the paper's Table II (users, connections,
average degree) for the synthetic stand-in graphs, side by side with the
published full-scale numbers, so the substitution is auditable.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentConfig, dataset_graph
from repro.graphs.datasets import DATASETS
from repro.graphs.stats import graph_stats
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig) -> list[dict]:
    """Measure each dataset's synthetic stand-in."""
    rows = []
    for name in config.datasets:
        graph = dataset_graph(config, name, trial=0)
        stats = graph_stats(graph)
        profile = DATASETS[name if name != "googleplus" else "gplus"]
        rows.append(
            {
                "dataset": name,
                "users": stats.users,
                "connections": stats.connections,
                "avg_degree": stats.average_degree,
                "max_degree": stats.max_degree,
                "clustering": stats.clustering,
                "paper_users": profile.paper_users,
                "paper_connections": profile.paper_connections,
                "paper_avg_degree": profile.paper_avg_degree,
            }
        )
    return rows


def report(config: ExperimentConfig) -> str:
    """Render Table II (synthetic vs paper)."""
    rows = run(config)
    return format_table(
        headers=[
            "Data Set",
            "Users",
            "Connections",
            "Avg Degree",
            "Clustering",
            "Paper Users",
            "Paper Conns",
            "Paper AvgDeg",
        ],
        rows=[
            (
                r["dataset"],
                r["users"],
                r["connections"],
                r["avg_degree"],
                r["clustering"],
                r["paper_users"],
                r["paper_connections"],
                r["paper_avg_degree"],
            )
            for r in rows
        ],
        title="Table II: social network data sets (synthetic stand-ins vs paper)",
    )
