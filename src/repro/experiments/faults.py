"""Fault-injection degradation sweep (beyond the paper's evaluation).

Figure 6 shows SELECT's §III-F recovery holding 100% availability under
churn — but against a faithful network. This experiment stresses the same
claim under *imperfect* networks: per-hop message loss rising from 0% to
20% (with a bounded retransmission budget) plus noisy liveness probes,
for SELECT (recovery through the :class:`~repro.net.faults.PingService`)
versus Symphony (no maintenance). The output is the degradation curve:
loss rate × availability × mean retries per message × false evictions.
"""

from __future__ import annotations

import numpy as np

from repro.core.recovery import RecoveryManager
from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    pretty,
    trial_rngs,
)
from repro.metrics.availability import churn_availability
from repro.net.churn import ChurnModel
from repro.net.faults import FaultPlan, PingService
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report", "LOSS_RATES"]

#: per-hop loss probabilities swept by default (0% .. 20%).
LOSS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)

_SYSTEMS = ("select", "symphony")

#: probe noise applied at every loss level (the lossy network also loses
#: pings); kept moderate so the suspicion mechanism — not silence — is
#: what protects high-CMA contacts.
PING_FALSE_NEGATIVE = 0.10


def _fault_plan(loss: float, rng: np.random.Generator) -> FaultPlan:
    """The sweep's fault plan at one loss level (seeded per trial)."""
    return FaultPlan(
        loss_rate=loss,
        retry_budget=2,
        ping_false_negative=PING_FALSE_NEGATIVE if loss > 0.0 else 0.0,
        seed=int(rng.integers(2**31 - 1)),
    )


def run(
    config: ExperimentConfig,
    loss_rates: "tuple[float, ...]" = LOSS_RATES,
    ticks: int = 8,
    horizon: float = 2400.0,
) -> list[dict]:
    """Availability degradation per dataset × system × loss rate."""
    rows = []
    rngs = trial_rngs(config, "faults")
    for dataset in config.datasets:
        for system in _SYSTEMS:
            for loss in loss_rates:
                avail = []
                mean_retries = []
                false_evictions = []
                drops = []
                for trial in range(config.trials):
                    graph = dataset_graph(config, dataset, trial)
                    overlay = build_system(config, system, graph, trial)
                    churn = ChurnModel(graph.num_nodes, seed=rngs[trial])
                    matrix = churn.online_matrix(horizon, ticks)
                    faults = _fault_plan(loss, rngs[trial])
                    manager = None
                    repair = None
                    if system == "select":
                        manager = RecoveryManager(overlay, ping_service=PingService(faults))
                        repair = manager.tick
                    points = churn_availability(
                        overlay,
                        matrix,
                        lookups_per_tick=max(10, config.lookups // ticks),
                        repair=repair,
                        faults=faults,
                        seed=rngs[trial],
                    )
                    avail.append(float(np.mean([p.availability for p in points])))
                    mean_retries.append(faults.stats.mean_retries())
                    drops.append(faults.stats.drops)
                    false_evictions.append(manager.false_evictions if manager else 0)
                rows.append(
                    {
                        "dataset": dataset,
                        "system": system,
                        "loss_rate": loss,
                        "availability": summarize(avail).mean,
                        "mean_retries": summarize(mean_retries).mean,
                        "false_evictions": summarize(false_evictions).mean,
                        "drops": summarize(drops).mean,
                    }
                )
    return rows


def report(
    config: ExperimentConfig,
    loss_rates: "tuple[float, ...]" = LOSS_RATES,
    ticks: int = 8,
    horizon: float = 2400.0,
) -> str:
    """Render the degradation sweep table."""
    rows = run(config, loss_rates=loss_rates, ticks=ticks, horizon=horizon)
    return format_table(
        headers=[
            "Dataset",
            "System",
            "Loss rate",
            "Availability",
            "Retries/msg",
            "False evictions",
            "Drops",
        ],
        rows=[
            (
                r["dataset"],
                pretty(r["system"]),
                f"{r['loss_rate']:.0%}",
                r["availability"],
                r["mean_retries"],
                r["false_evictions"],
                r["drops"],
            )
            for r in rows
        ],
        title="Fault sweep: availability vs per-hop message loss (retry budget = 2)",
    )
