"""Shared experiment configuration and helpers.

The paper averages every metric over 100 independent trials on graphs of
up to 4M users; on one machine we default to fewer trials and scaled
graphs. Presets:

* ``quick``  — seconds; used by the pytest-benchmark targets.
* ``default`` — minutes; the numbers recorded in EXPERIMENTS.md.
* ``full``   — closer to paper scale (hours); for the patient.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.registry import build_overlay, display_name, system_names
from repro.graphs.datasets import load_dataset
from repro.graphs.graph import SocialGraph
from repro.util.exceptions import ConfigurationError
from repro.util.rng import RngStream

__all__ = ["ExperimentConfig", "build_system", "trial_rngs", "dataset_graph"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    datasets: tuple = ("facebook", "twitter", "gplus", "slashdot")
    systems: tuple = ("select", "symphony", "bayeux", "vitis", "omen")
    num_nodes: int = 400
    trials: int = 3
    seed: int = 2018
    lookups: int = 200
    publishers: int = 20
    k_links: "int | None" = None  # None = log2(N), the paper's default
    #: path to a saved snapshot directory; experiments that support
    #: warm-starting restore the converged overlay from here instead of
    #: re-converging (see :mod:`repro.experiments.warmstart`).
    resume_from: "str | None" = None

    def __post_init__(self):
        if self.num_nodes < 16:
            raise ConfigurationError(f"num_nodes too small: {self.num_nodes}")
        if self.trials < 1:
            raise ConfigurationError(f"trials must be >= 1, got {self.trials}")
        unknown = [s for s in self.systems if s not in system_names() + ["random"]]
        if unknown:
            raise ConfigurationError(f"unknown systems: {unknown}")

    # -- presets ------------------------------------------------------------

    @classmethod
    def quick(cls) -> "ExperimentConfig":
        """Small enough for CI benchmarks (seconds per experiment)."""
        return cls(
            datasets=("facebook", "slashdot"),
            num_nodes=160,
            trials=2,
            lookups=80,
            publishers=8,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """The configuration EXPERIMENTS.md records (minutes)."""
        return cls()

    @classmethod
    def full(cls) -> "ExperimentConfig":
        """Closer to the paper's setup (hours)."""
        return cls(num_nodes=2000, trials=10, lookups=500, publishers=50)

    @classmethod
    def preset(cls, name: str) -> "ExperimentConfig":
        """Look up a preset by name."""
        presets = {"quick": cls.quick, "default": cls.default, "full": cls.full}
        if name not in presets:
            raise ConfigurationError(f"unknown preset {name!r}; options: {sorted(presets)}")
        return presets[name]()

    def with_(self, **kwargs) -> "ExperimentConfig":
        """Copy with overrides."""
        return replace(self, **kwargs)

    def digest(self) -> str:
        """Short content hash of this configuration.

        Stamped into telemetry provenance blocks so a report can be
        matched to the exact configuration (and snapshot) it came from.
        ``resume_from`` is excluded: it points at an input, it does not
        change what the configuration *is*.
        """
        import hashlib
        import json
        from dataclasses import asdict

        payload = asdict(self)
        payload.pop("resume_from", None)
        payload = {k: list(v) if isinstance(v, tuple) else v for k, v in payload.items()}
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]


def dataset_graph(config: ExperimentConfig, dataset: str, trial: int, num_nodes: "int | None" = None) -> SocialGraph:
    """The trial's social graph (seeded per dataset+trial)."""
    stream = RngStream(config.seed)
    rng = stream.child(f"graph:{dataset}:{trial}:{num_nodes or config.num_nodes}")
    return load_dataset(dataset, num_nodes=num_nodes or config.num_nodes, seed=rng)


def build_system(
    config: ExperimentConfig,
    system: str,
    graph: SocialGraph,
    trial: int,
    **kwargs,
):
    """Build one overlay for one trial (seeded per system+trial)."""
    stream = RngStream(config.seed)
    rng = stream.child(f"overlay:{system}:{graph.name}:{trial}:{graph.num_nodes}")
    return build_overlay(system, graph, k_links=config.k_links, seed=rng, **kwargs)


def trial_rngs(config: ExperimentConfig, label: str) -> list[np.random.Generator]:
    """One independent generator per trial for measurement sampling."""
    stream = RngStream(config.seed)
    return [stream.child(f"{label}:{t}") for t in range(config.trials)]


def pretty(system: str) -> str:
    """Display name for reports."""
    return display_name(system)
