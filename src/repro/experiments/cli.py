"""Command-line harness: ``select-repro <experiment> [--preset quick]``.

Regenerates any of the paper's tables/figures as text reports. ``all``
runs every experiment in paper order.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation,
    conn_sweep,
    doctor,
    faults,
    fig2_hops,
    fig3_relays,
    fig4_load,
    fig5_iterations,
    fig6_churn,
    fig7_latency,
    fig8_ids,
    geo,
    stabilize,
    table2,
)
from repro.experiments.common import ExperimentConfig

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table2": table2,
    "ablation": ablation,
    "conn-sweep": conn_sweep,
    "doctor": doctor,
    "faults": faults,
    "fig2": fig2_hops,
    "fig3": fig3_relays,
    "fig4": fig4_load,
    "fig5": fig5_iterations,
    "fig6": fig6_churn,
    "fig7": fig7_latency,
    "fig8": fig8_ids,
    "geo": geo,
    "stabilize": stabilize,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="select-repro",
        description="Regenerate the SELECT paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artifact to regenerate",
    )
    parser.add_argument("--preset", default="quick", choices=["quick", "default", "full"])
    parser.add_argument("--num-nodes", type=int, default=None, help="override graph size")
    parser.add_argument("--trials", type=int, default=None, help="override trial count")
    parser.add_argument("--seed", type=int, default=None, help="override root seed")
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated subset, e.g. facebook,slashdot",
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset, e.g. select,symphony",
    )
    parser.add_argument(
        "--export",
        default=None,
        metavar="DIR",
        help="also write the raw rows as CSV into this directory",
    )
    return parser


def config_from_args(args) -> ExperimentConfig:
    config = ExperimentConfig.preset(args.preset)
    overrides = {}
    if args.num_nodes is not None:
        overrides["num_nodes"] = args.num_nodes
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.datasets:
        overrides["datasets"] = tuple(s.strip() for s in args.datasets.split(",") if s.strip())
    if args.systems:
        overrides["systems"] = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    return config.with_(**overrides) if overrides else config


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    config = config_from_args(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        module = EXPERIMENTS[name]
        start = time.time()
        print(module.report(config))
        if args.export:
            from repro.experiments.export import export_experiment

            path = export_experiment(name, module, config, args.export)
            print(f"[rows exported to {path}]", file=sys.stderr)
        print(f"[{name}: {time.time() - start:.1f}s]\n", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
