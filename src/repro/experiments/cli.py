"""Command-line harness: ``select-repro <experiment> [--preset quick]``.

Regenerates any of the paper's tables/figures as text reports. ``all``
runs every experiment in paper order. ``--telemetry DIR`` installs a
process-wide metrics registry and route tracer for the run and writes
``metrics.prom`` / ``report.json`` / ``traces.jsonl`` into ``DIR``;
``select-repro report DIR`` renders that directory back as text.

``select-repro snapshot DIR`` builds one converged SELECT overlay and
saves it as a ``select-repro/snapshot/v1`` directory; ``--resume DIR``
hands the saved snapshot to experiments that can warm-start from it
(``warmstart``) and stamps its id into the telemetry provenance block.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import (
    ablation,
    conn_sweep,
    doctor,
    faults,
    fig2_hops,
    fig3_relays,
    fig4_load,
    fig5_iterations,
    fig6_churn,
    fig7_latency,
    fig8_ids,
    geo,
    stabilize,
    table2,
    warmstart,
)
from repro.experiments.common import ExperimentConfig
from repro.telemetry.registry import MetricsRegistry, set_registry
from repro.telemetry.tracer import RouteTracer, set_tracer

__all__ = ["main", "EXPERIMENTS"]

EXPERIMENTS = {
    "table2": table2,
    "ablation": ablation,
    "conn-sweep": conn_sweep,
    "doctor": doctor,
    "faults": faults,
    "fig2": fig2_hops,
    "fig3": fig3_relays,
    "fig4": fig4_load,
    "fig5": fig5_iterations,
    "fig6": fig6_churn,
    "fig7": fig7_latency,
    "fig8": fig8_ids,
    "geo": geo,
    "stabilize": stabilize,
    "warmstart": warmstart,
}


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="select-repro",
        description="Regenerate the SELECT paper's tables and figures.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS)
        + ["all", "report", "snapshot", "scenario", "live", "trace", "build"],
        help="which artifact to regenerate, 'report' to render a telemetry dir, "
        "'snapshot' to save a converged overlay, 'scenario' to run a named "
        "chaos scenario to an SLO verdict, 'live' to run a scripted "
        "asyncio cluster with SWIM membership, 'trace' to render the "
        "causal trees of a traced live run, or 'build' to run one overlay "
        "construction (optionally ring-sharded across worker processes)",
    )
    parser.add_argument(
        "dir",
        nargs="?",
        default=None,
        metavar="DIR",
        help="telemetry directory ('report'/'trace'), snapshot directory "
        "('snapshot'), or scenario name ('scenario'/'live')",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="with 'scenario'/'live': list the catalog and exit",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="with 'live': which scripted scenario to run "
        "(alternative to the positional name)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="with 'live': cluster size (alias for --num-nodes)",
    )
    parser.add_argument(
        "--unprotected",
        action="store_true",
        help="with 'scenario': disable overload protection and catch-up "
        "(the baseline the protection is judged against)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="with 'live': thread causal trace context through every "
        "envelope and arm per-node flight recorders (opt-in; off = the "
        "zero-overhead path)",
    )
    parser.add_argument(
        "--trace-id",
        default=None,
        metavar="ID",
        help="with 'trace': show only this causal chain (e.g. '412:17')",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=10,
        help="with 'trace': how many causal trees to render (default 10)",
    )
    parser.add_argument("--preset", default="quick", choices=["quick", "default", "full"])
    parser.add_argument("--num-nodes", type=int, default=None, help="override graph size")
    parser.add_argument("--trials", type=int, default=None, help="override trial count")
    parser.add_argument("--seed", type=int, default=None, help="override root seed")
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated subset, e.g. facebook,slashdot",
    )
    parser.add_argument(
        "--systems",
        default=None,
        help="comma-separated subset, e.g. select,symphony",
    )
    parser.add_argument(
        "--export",
        default=None,
        metavar="DIR",
        help="also write the raw rows as CSV into this directory",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="DIR",
        help="collect metrics + per-message route traces and write them into DIR",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="warm-start from a snapshot directory saved by 'select-repro snapshot'; "
        "with 'build', resume a sharded build from a checkpoint directory",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="with 'build': worker processes for sharded construction (default 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="with 'build': ring arcs (default: one per worker); "
        "--shards with --workers 1 runs the sharded semantics in-process",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="with 'build': write shard checkpoint generations into DIR",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=10,
        help="with 'build': rounds between checkpoints (default 10)",
    )
    parser.add_argument(
        "--parity",
        action="store_true",
        help="with 'build': also run the 1-worker in-process sharded build "
        "and assert the results are bit-identical",
    )
    return parser


def config_from_args(args) -> ExperimentConfig:
    config = ExperimentConfig.preset(args.preset)
    overrides = {}
    if args.num_nodes is not None:
        overrides["num_nodes"] = args.num_nodes
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.datasets:
        overrides["datasets"] = tuple(s.strip() for s in args.datasets.split(",") if s.strip())
    if args.systems:
        overrides["systems"] = tuple(s.strip() for s in args.systems.split(",") if s.strip())
    if getattr(args, "resume", None):
        overrides["resume_from"] = args.resume
    return config.with_(**overrides) if overrides else config


def _run_report(args) -> int:
    from repro.telemetry.report import render_report

    if not args.dir:
        print("usage: select-repro report TELEMETRY_DIR", file=sys.stderr)
        return 2
    print(render_report(args.dir))
    return 0


def _run_snapshot(args, config: ExperimentConfig) -> int:
    """Build one converged SELECT overlay and save it as a snapshot dir."""
    from repro.experiments.common import build_system, dataset_graph
    from repro.persist import save

    if not args.dir:
        print("usage: select-repro snapshot SNAPSHOT_DIR", file=sys.stderr)
        return 2
    dataset = config.datasets[0]
    graph = dataset_graph(config, dataset, 0)
    overlay = build_system(config, "select", graph, 0)
    snapshot = overlay.snapshot()
    save(snapshot, args.dir)
    manifest = snapshot["manifest"]
    print(
        f"snapshot {manifest['snapshot_id']} written to {args.dir}: "
        f"{dataset} n={graph.num_nodes}, converged at round {manifest['round']}"
    )
    return 0


def _run_build(args, config: ExperimentConfig) -> int:
    """Run one (optionally sharded) overlay construction end to end."""
    import time

    import numpy as np

    from repro.core.config import SelectConfig
    from repro.core.select import SelectOverlay
    from repro.experiments.common import dataset_graph

    dataset = config.datasets[0]
    graph = dataset_graph(config, dataset, 0)
    seed = config.seed
    select_cfg = SelectConfig(num_workers=args.workers, shards=args.shards)
    registry = MetricsRegistry() if args.telemetry else None
    overlay = SelectOverlay(graph, config=select_cfg)
    opts = {}
    if args.checkpoint:
        opts["checkpoint_dir"] = args.checkpoint
        opts["checkpoint_every"] = args.checkpoint_every
    if args.resume:
        opts["resume_from"] = args.resume
    if registry is not None:
        opts["registry"] = registry
    overlay.shard_opts = opts
    t0 = time.perf_counter()
    overlay.build(seed=seed)
    elapsed = time.perf_counter() - t0
    shards = select_cfg.effective_shards or 1
    print(
        f"build: {dataset} n={graph.num_nodes} seed={seed} "
        f"workers={args.workers} shards={shards} -> converged in "
        f"{overlay.iterations} rounds, {elapsed:.2f}s"
    )
    stats = overlay.shard_stats
    if stats:
        print(
            f"  shard engine: {stats['rounds']} rounds, "
            f"{sum(stats['frames'].values())} frames, "
            f"{stats['boundary_bytes']} boundary bytes, "
            f"barrier wait {stats['barrier_wait_s']:.2f}s, "
            f"{stats['cross_arc_pairs']} cross-arc pairs, "
            f"{stats['checkpoints']} checkpoints, "
            f"{stats['restarts']} restarts, {stats['rebalances']} rebalances"
        )
        if stats["worker_peak_rss_kb"]:
            print(
                f"  worker peak RSS: "
                f"{', '.join(str(r) + ' KiB' for r in stats['worker_peak_rss_kb'])}"
            )
    rc = 0
    if args.parity:
        ref_cfg = SelectConfig(num_workers=1, shards=shards)
        ref = SelectOverlay(graph, config=ref_cfg)
        ref.build(seed=seed)
        ids_ok = bool(np.array_equal(overlay.ids, ref.ids))
        links_ok = [sorted(t.long_links) for t in overlay.tables] == [
            sorted(t.long_links) for t in ref.tables
        ]
        status = "ok" if ids_ok and links_ok else "FAILED"
        print(
            f"  parity vs 1-worker in-process build: {status} "
            f"(identifiers {'==' if ids_ok else '!='}, "
            f"links {'==' if links_ok else '!='})"
        )
        if not (ids_ok and links_ok):
            rc = 1
    if args.dir:
        from repro.persist import save

        snapshot = overlay.snapshot()
        save(snapshot, args.dir)
        print(f"  snapshot {snapshot['manifest']['snapshot_id']} written to {args.dir}")
    if args.telemetry:
        from repro.telemetry.export import write_telemetry

        meta = {
            "build_dataset": dataset,
            "seed": seed,
            "num_nodes": graph.num_nodes,
            "workers": args.workers,
            "shards": shards,
        }
        paths = write_telemetry(
            args.telemetry, registry, meta=meta, provenance={"root_seed": seed}
        )
        print(
            f"[telemetry written to {args.telemetry}: {', '.join(sorted(paths))}]",
            file=sys.stderr,
        )
    return rc


def _run_scenario(args) -> int:
    """Run one catalog scenario and report (and optionally write) its verdict."""
    from repro.scenarios import get_scenario, run_scenario, scenario_names
    from repro.scenarios.slo import VERDICT_FILE, write_verdict

    if args.list:
        for name in scenario_names():
            print(f"{name:17s} {get_scenario(name).description}")
        return 0
    if not args.dir:
        print(
            "usage: select-repro scenario NAME [--telemetry DIR] (or --list)",
            file=sys.stderr,
        )
        return 2

    registry = MetricsRegistry()
    result = run_scenario(
        args.dir,
        num_nodes=args.num_nodes if args.num_nodes is not None else 160,
        seed=args.seed if args.seed is not None else 2018,
        protected=False if args.unprotected else None,
        registry=registry,
        resume_from=args.resume or None,
    )
    verdict = result.verdict

    print(f"scenario {verdict['scenario']}: {'PASS' if verdict['passed'] else 'FAIL'}")
    for obj in verdict["objectives"]:
        sign = ">=" if obj["kind"] == "floor" else "<="
        status = "ok" if obj["passed"] else "VIOLATED"
        print(
            f"  {obj['name']:22s} {obj['observed']:10.4f} {sign} "
            f"{obj['threshold']:10.4f}  margin {obj['margin']:+.4f}  {status}"
        )
    obs = verdict["observed"]
    print(
        f"  [{obs['notifications']} notifications, shed {obs['shed']}, "
        f"dropped {obs['drops']}, caught up {obs['catchup_recovered']}]"
    )

    if args.telemetry:
        import os

        from repro.telemetry.export import write_telemetry

        meta = {
            "scenario": verdict["scenario"],
            "seed": verdict["seed"],
            "num_nodes": verdict["num_nodes"],
            "protected": not args.unprotected,
        }
        paths = write_telemetry(
            args.telemetry, registry, meta=meta, provenance=dict(verdict["provenance"])
        )
        verdict_path = os.path.join(args.telemetry, VERDICT_FILE)
        write_verdict(verdict, verdict_path)
        print(
            f"[telemetry written to {args.telemetry}: "
            f"{', '.join(sorted(paths) + [VERDICT_FILE])}]",
            file=sys.stderr,
        )
    return 0 if verdict["passed"] else 1


def _run_live(args) -> int:
    """Run one scripted live-cluster scenario and report its verdict."""
    import asyncio

    from repro.live import get_live_scenario, live_scenario_names, run_live_scenario

    if args.list:
        for name in live_scenario_names():
            print(f"{name:20s} {get_live_scenario(name).description}")
        return 0
    name = args.scenario or args.dir
    if not name:
        print(
            "usage: select-repro live --scenario NAME [--nodes N] "
            "[--seed S] [--telemetry DIR] (or --list)",
            file=sys.stderr,
        )
        return 2
    nodes = args.nodes if args.nodes is not None else (args.num_nodes or 100)
    seed = args.seed if args.seed is not None else 2018
    registry = MetricsRegistry()
    cluster = None
    if args.trace:
        import os

        from repro.live import LiveCluster

        flight_path = (
            os.path.join(args.telemetry, "flight.json") if args.telemetry else None
        )
        cluster = LiveCluster(
            num_nodes=nodes,
            scenario=name,
            seed=seed,
            registry=registry,
            trace=True,
            flight_path=flight_path,
        )
        result = asyncio.run(cluster.run())
    else:
        result = asyncio.run(
            run_live_scenario(name, num_nodes=nodes, seed=seed, registry=registry)
        )

    ok = (
        result["membership_converged"]
        and result["doctor_ok"]
        and result["unaccounted"] == 0
        and result["eventual_delivery_ratio"] >= 0.99
        and not result["gave_up_nodes"]
    )
    if args.trace:
        ok = ok and result["trace"]["slo"]["passed"]
    print(
        f"live {result['scenario']}: {'PASS' if ok else 'FAIL'} "
        f"(n={result['num_nodes']}, seed={result['seed']})"
    )
    print(
        f"  eventual delivery  {result['eventual_delivery_ratio']:.4f}  "
        f"({result['delivered_live']} live + {result['recovered_catchup']} caught up "
        f"of {result['intended_pairs']} intended pairs)"
    )
    print(
        f"  degraded           {result['shed_pairs']} shed to catch-up, "
        f"{result['pending_catchup']} still pending, "
        f"{result['subscriber_dead']} dead subscribers, "
        f"{result['unaccounted']} unaccounted"
    )
    conv = result["convergence_s"]
    membership = (
        f"reconverged {conv:.2f}s after the last fault"
        if result["membership_converged"] and conv is not None
        else ("converged" if result["membership_converged"] else "NOT converged")
    )
    print(f"  membership         {membership}")
    print(f"  overlay doctor     {'clean' if result['doctor_ok'] else 'VIOLATIONS'}")
    if result["gave_up_nodes"]:
        print(f"  supervisor         gave up on nodes {result['gave_up_nodes']}")
    if args.trace:
        t = result["trace"]
        print(
            f"  causal chains      {t['complete_chains']}/{t['traces']} complete "
            f"({t['complete_chain_ratio']:.2%}), {t['orphan_spans']} orphans, "
            f"{t['dropped_spans']} spans dropped by retention"
        )
        print(
            f"  chain latency      p50 {t['latency_ms']['p50']:.1f} ms, "
            f"p99 {t['latency_ms']['p99']:.1f} ms; hops p99 {t['hops']['p99']:g}"
        )
        for obj in t["slo"]["objectives"]:
            sign = ">=" if obj["kind"] == "floor" else "<="
            status = "ok" if obj["passed"] else "VIOLATED"
            print(
                f"  slo {obj['name']:18s} {obj['observed']:10.4f} {sign} "
                f"{obj['threshold']:10.4f}  margin {obj['margin']:+.4f}  {status}"
            )

    if args.telemetry:
        import os

        from repro.telemetry.export import write_telemetry
        from repro.util.atomicio import atomic_write_json

        meta = {"live_scenario": name, "seed": seed, "num_nodes": nodes}
        extra_files = ["live.json"]
        if cluster is not None and not ok:
            # Acceptance failure: persist the flight recorders so CI can
            # upload per-node evidence alongside the traces.
            if cluster.dump_flight("acceptance_failure"):
                extra_files.append("flight.json")
        elif cluster is not None and cluster.incidents:
            extra_files.append("flight.json")
        paths = write_telemetry(
            args.telemetry,
            registry,
            tracer=cluster.route_tracer if cluster is not None else None,
            meta=meta,
            provenance={"root_seed": seed},
        )
        atomic_write_json(
            os.path.join(args.telemetry, "live.json"), result, indent=2, sort_keys=True
        )
        print(
            f"[telemetry written to {args.telemetry}: "
            f"{', '.join(sorted(paths) + sorted(extra_files))}]",
            file=sys.stderr,
        )
    return 0 if ok else 1


def _run_trace(args) -> int:
    """Render the causal trees of a traced live run's telemetry dir."""
    from repro.telemetry.report import render_trace_tree

    if not args.dir:
        print(
            "usage: select-repro trace TELEMETRY_DIR [--trace-id ID] [--limit N]",
            file=sys.stderr,
        )
        return 2
    print(render_trace_tree(args.dir, trace_id=args.trace_id, limit=args.limit))
    return 0


def _resume_snapshot_id(config: ExperimentConfig) -> "str | None":
    """Manifest id of the snapshot the run resumes from (None when cold)."""
    if not config.resume_from:
        return None
    from repro.persist import load

    return load(config.resume_from)["manifest"]["snapshot_id"]


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        return _run_report(args)
    if args.experiment == "scenario":
        return _run_scenario(args)
    if args.experiment == "live":
        return _run_live(args)
    if args.experiment == "trace":
        return _run_trace(args)
    config = config_from_args(args)
    if args.experiment == "snapshot":
        return _run_snapshot(args, config)
    if args.experiment == "build":
        return _run_build(args, config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    # The CLI always times phases through a real registry (perf_counter
    # underneath); only --telemetry installs it process-wide so the
    # instrumented layers start feeding it too.
    registry = MetricsRegistry()
    tracer = RouteTracer() if args.telemetry else None
    prev_registry = set_registry(registry) if args.telemetry else None
    prev_tracer = set_tracer(tracer) if args.telemetry else None
    try:
        for name in names:
            module = EXPERIMENTS[name]
            with registry.timer(f"experiment.{name}") as timing:
                print(module.report(config))
            if args.export:
                from repro.experiments.export import export_experiment

                path = export_experiment(name, module, config, args.export)
                print(f"[rows exported to {path}]", file=sys.stderr)
            print(f"[{name}: {timing.elapsed:.1f}s]\n", file=sys.stderr)
        if args.telemetry:
            from repro.telemetry.export import write_telemetry

            meta = {
                "experiments": ",".join(names),
                "preset": args.preset,
                "seed": config.seed,
                "num_nodes": config.num_nodes,
                "trials": config.trials,
            }
            provenance = {
                "root_seed": config.seed,
                "config_hash": config.digest(),
                "snapshot_id": _resume_snapshot_id(config),
            }
            paths = write_telemetry(
                args.telemetry, registry, tracer=tracer, meta=meta, provenance=provenance
            )
            print(f"[telemetry written to {args.telemetry}: "
                  f"{', '.join(sorted(paths))}]", file=sys.stderr)
    finally:
        if args.telemetry:
            set_registry(prev_registry)
            set_tracer(prev_tracer)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
