"""§IV-C link-count sweep.

"As the number of direct connections increases, we observe a substantial
reduction, over 90%, on the average number of hops ... as the number of
links used overcomes the logarithmic number of peers in the overlay
network, no further improvement is performed." — this experiment sweeps
the per-peer link budget K and measures SELECT's lookup hops, justifying
the paper's (and our) default of K = log2(N).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
    trial_rngs,
)
from repro.metrics.hops import sample_friend_pairs, social_lookup_hops
from repro.pubsub.api import PubSubSystem
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report", "sweep_values"]


def sweep_values(num_nodes: int) -> list[int]:
    """The K values swept: 1, 2, 4, ..., past log2(N)."""
    log_n = int(np.ceil(np.log2(max(num_nodes, 2))))
    values = [1, 2, 4, log_n, log_n + 4, 2 * log_n]
    return sorted(set(v for v in values if v >= 1))


def run(config: ExperimentConfig, dataset: "str | None" = None) -> list[dict]:
    """Hop counts for SELECT across the K sweep (one dataset)."""
    dataset = dataset or config.datasets[0]
    rows = []
    rngs = trial_rngs(config, "conn_sweep")
    for k in sweep_values(config.num_nodes):
        samples = []
        for trial in range(config.trials):
            graph = dataset_graph(config, dataset, trial)
            overlay = build_system(config.with_(k_links=k), "select", graph, trial)
            pubsub = PubSubSystem(overlay)
            pairs = sample_friend_pairs(graph, config.lookups, seed=rngs[trial])
            hops = social_lookup_hops(pubsub, pairs)
            if hops.size:
                samples.append(float(hops.mean()))
        stats = summarize(samples)
        rows.append({"dataset": dataset, "k_links": k, "hops": stats.mean, "ci95": stats.ci95})
    return rows


def report(config: ExperimentConfig, dataset: "str | None" = None) -> str:
    """Render the sweep with the log2(N) plateau marked."""
    rows = run(config, dataset=dataset)
    log_n = int(np.ceil(np.log2(config.num_nodes)))
    table_rows = [
        (
            r["k_links"],
            "<-- log2(N)" if r["k_links"] == log_n else "",
            r["hops"],
            r["ci95"],
        )
        for r in rows
    ]
    title = (
        f"§IV-C sweep: SELECT lookup hops vs direct connections K "
        f"(dataset={rows[0]['dataset']}, N={config.num_nodes})"
    )
    return format_table(headers=["K", "", "Avg hops", "±95%"], rows=table_rows, title=title)
