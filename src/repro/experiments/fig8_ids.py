"""Figure 8 — identifier distribution after SELECT.

The paper visualizes the post-reassignment identifier space: small groups
of socially connected nodes share compact ID regions while the occupied
space still covers the whole ring. We report (a) a histogram of
identifiers over ring segments and (b) the mean ring distance between
social friends, compared with the uniform-placement expectation of 0.25.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    build_system,
    dataset_graph,
)
from repro.idspace.space import ring_distance
from repro.util.stats import summarize
from repro.util.tables import format_table

__all__ = ["run", "report"]


def run(config: ExperimentConfig, bins: int = 10) -> list[dict]:
    """Identifier-space statistics per dataset (SELECT only)."""
    rows = []
    for dataset in config.datasets:
        friend_dist = []
        random_dist = []
        coverage = []
        histogram = np.zeros(bins, dtype=np.float64)
        for trial in range(config.trials):
            graph = dataset_graph(config, dataset, trial)
            overlay = build_system(config, "select", graph, trial)
            ids = overlay.ids
            fd = [ring_distance(float(ids[u]), float(ids[v])) for u, v in graph.edges()]
            friend_dist.append(float(np.mean(fd)))
            rng = np.random.default_rng(trial)
            pairs = rng.integers(0, graph.num_nodes, size=(len(fd), 2))
            rd = [
                ring_distance(float(ids[a]), float(ids[b]))
                for a, b in pairs
                if a != b
            ]
            random_dist.append(float(np.mean(rd)))
            hist, _ = np.histogram(ids, bins=bins, range=(0.0, 1.0))
            histogram += hist / hist.sum()
            occupied = (hist > 0).mean()
            coverage.append(float(occupied))
        rows.append(
            {
                "dataset": dataset,
                "mean_friend_distance": summarize(friend_dist).mean,
                "mean_random_distance": summarize(random_dist).mean,
                "ring_coverage": summarize(coverage).mean,
                "histogram": list(histogram / config.trials),
            }
        )
    return rows


def report(config: ExperimentConfig, bins: int = 10) -> str:
    """Render the Figure 8 summary."""
    rows = run(config, bins=bins)
    table_rows = []
    for r in rows:
        hist = " ".join(f"{100 * h:.0f}" for h in r["histogram"])
        table_rows.append(
            (
                r["dataset"],
                r["mean_friend_distance"],
                r["mean_random_distance"],
                r["ring_coverage"],
                hist,
            )
        )
    return format_table(
        headers=[
            "Dataset",
            "Friend ring dist",
            "Random-pair dist",
            "Ring coverage",
            "ID histogram (% per decile)",
        ],
        rows=table_rows,
        title="Figure 8: identifier distribution after SELECT (friends cluster, ring stays covered)",
    )
